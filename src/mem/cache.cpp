#include "mem/cache.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "common/assert.hpp"
#include "common/bits.hpp"
#include "obs/metrics.hpp"

namespace ppf::mem {

Cache::Cache(CacheConfig cfg, std::uint64_t rng_seed)
    : cfg_(std::move(cfg)), rng_(rng_seed) {
  PPF_CHECK_MSG(is_pow2(cfg_.line_bytes), "line size must be a power of two");
  PPF_CHECK_MSG(cfg_.size_bytes % cfg_.line_bytes == 0,
                 "cache size must be a multiple of the line size");
  offset_bits_ = log2_exact(cfg_.line_bytes);
  const std::uint64_t num_lines = cfg_.num_lines();
  PPF_CHECK(num_lines > 0);
  ways_ = cfg_.associativity == 0 ? num_lines : cfg_.associativity;
  PPF_CHECK_MSG(num_lines % ways_ == 0,
                 "line count must be a multiple of associativity");
  const std::uint64_t sets = num_lines / ways_;
  PPF_CHECK_MSG(is_pow2(sets), "set count must be a power of two");
  set_bits_ = log2_exact(sets);
  set_mask_ = sets - 1;
  tags_.resize(num_lines, 0);
  meta_.resize(num_lines);
  shadow_.resize(num_lines);
  scratch_view_.resize(ways_);
}

Eviction Cache::make_eviction(std::uint64_t set, std::size_t idx) const {
  const LineMeta& m = meta_[idx];
  Eviction ev;
  ev.line = line_from(set, tags_[idx]);
  ev.dirty = m.dirty;
  ev.pib = m.pib;
  ev.rib = m.rib;
  ev.trigger_pc = m.trigger_pc;
  ev.source = m.source;
  return ev;
}

std::optional<Eviction> Cache::fill(Addr addr, const FillInfo& info) {
  const LineAddr line = line_of(addr);
  const std::uint64_t set = set_index(line);
  const std::size_t base = set * ways_;

  // A racing fill for the same line (e.g. demand miss merging with an
  // in-flight prefetch) just refreshes the existing line.
  if (const std::size_t existing = find_way(line); existing != kNoWay) {
    meta_[existing].last_use = ++stamp_;
    meta_[existing].rrpv = 0;
    return std::nullopt;
  }

  std::size_t victim;
  if (ways_ == 1) {
    victim = 0;
  } else {
    for (std::uint64_t w = 0; w < ways_; ++w) {
      const LineMeta& m = meta_[base + w];
      scratch_view_[w] = WayState{m.valid, m.last_use, m.fill_seq, m.rrpv};
    }
    victim = choose_victim(std::span<WayState>(scratch_view_),
                           cfg_.replacement, rng_);
    if (uses_rrpv(cfg_.replacement)) {
      // The RRIP victim scan ages the whole set in place; persist the
      // aged counters back into the tag array.
      for (std::uint64_t w = 0; w < ways_; ++w) {
        meta_[base + w].rrpv = scratch_view_[w].rrpv;
      }
    }
  }

  std::optional<Eviction> ev;
  const std::size_t idx = base + victim;
  LineMeta& v = meta_[idx];
  if (v.valid) {
    ev = make_eviction(set, idx);
    evictions_.add();
    // Pollution proxy: a prefetch fill displacing a line that was actually
    // in use (demand-fetched, or a prefetched line that was referenced).
    if (info.is_prefetch && (!v.pib || v.rib)) prefetch_displacements_.add();
  }

  tags_[idx] = tag_of(line);
  v = LineMeta{};
  v.valid = true;
  v.dirty = info.dirty;
  v.pib = info.is_prefetch;
  v.trigger_pc = info.trigger_pc;
  v.source = info.source;
  v.fill_seq = ++stamp_;
  if (cfg_.replacement == ReplacementKind::Lip && ways_ > 1) {
    // LIP: insert at the stack bottom. Each insert takes a stamp below
    // every demand touch AND below the previous insert, so an untouched
    // run of fills is evicted newest-first — exactly the thrash
    // resistance LIP buys. A demand hit promotes to MRU as usual.
    v.last_use = --lip_stamp_;
  } else {
    v.last_use = stamp_;
  }
  v.rrpv = insertion_rrpv(cfg_.replacement, rng_);
  shadow_[idx] = ShadowEntry{};
  fills_.add();
  return ev;
}

std::optional<Eviction> Cache::invalidate(Addr addr) {
  const LineAddr line = line_of(addr);
  if (const std::size_t idx = find_way(line); idx != kNoWay) {
    Eviction ev = make_eviction(set_index(line), idx);
    meta_[idx].valid = false;
    evictions_.add();
    return ev;
  }
  return std::nullopt;
}

std::vector<Eviction> Cache::drain() {
  std::vector<Eviction> out;
  for (std::uint64_t set = 0; set <= set_mask_; ++set) {
    for (std::uint64_t w = 0; w < ways_; ++w) {
      const std::size_t idx = set * ways_ + w;
      if (meta_[idx].valid) {
        out.push_back(make_eviction(set, idx));
        meta_[idx].valid = false;
      }
    }
  }
  return out;
}

void Cache::set_nsp_tag(Addr addr, bool value) {
  if (const std::size_t idx = find_way(line_of(addr)); idx != kNoWay) {
    meta_[idx].nsp_tag = value;
  }
}

ShadowEntry* Cache::shadow_entry(Addr addr) {
  const std::size_t idx = find_way(line_of(addr));
  return idx == kNoWay ? nullptr : &shadow_[idx];
}

std::optional<std::uint64_t> Cache::victim_age(Addr addr) const {
  const LineAddr line = line_of(addr);
  const std::size_t base = set_index(line) * ways_;
  std::vector<WayState> view(ways_);
  for (std::uint64_t w = 0; w < ways_; ++w) {
    const LineMeta& m = meta_[base + w];
    view[w] = WayState{m.valid, m.last_use, m.fill_seq, m.rrpv};
  }
  // Random replacement makes the victim non-deterministic; report the
  // LRU way's age as the representative (the gate is advisory anyway).
  // The RRIP kinds age only the local copy here — a probe must not
  // perturb the real counters.
  Xorshift probe_rng(1);
  const ReplacementKind kind = cfg_.replacement == ReplacementKind::Random
                                   ? ReplacementKind::Lru
                                   : cfg_.replacement;
  const std::size_t victim =
      choose_victim(std::span<WayState>(view), kind, probe_rng);
  if (!meta_[base + victim].valid) return std::nullopt;
  return stamp_ - meta_[base + victim].last_use;
}

std::uint64_t Cache::hits(AccessType t) const {
  return hits_[static_cast<std::size_t>(t)].value();
}

std::uint64_t Cache::misses(AccessType t) const {
  return misses_[static_cast<std::size_t>(t)].value();
}

std::uint64_t Cache::total_hits() const {
  std::uint64_t s = 0;
  for (const auto& c : hits_) s += c.value();
  return s;
}

std::uint64_t Cache::total_misses() const {
  std::uint64_t s = 0;
  for (const auto& c : misses_) s += c.value();
  return s;
}

void Cache::reset_stats() {
  for (auto& c : hits_) c.reset();
  for (auto& c : misses_) c.reset();
  fills_.reset();
  evictions_.reset();
  prefetch_displacements_.reset();
}

void Cache::register_obs(obs::MetricRegistry& reg,
                         const std::string& prefix) const {
  reg.add_counter(prefix + ".demand_hits", [this] {
    return hits(AccessType::Load) + hits(AccessType::Store);
  });
  reg.add_counter(prefix + ".demand_misses", [this] {
    return misses(AccessType::Load) + misses(AccessType::Store);
  });
  reg.add_counter(prefix + ".total_hits", [this] { return total_hits(); });
  reg.add_counter(prefix + ".total_misses", [this] { return total_misses(); });
  reg.add_counter(prefix + ".fills", [this] { return fills(); });
  reg.add_counter(prefix + ".evictions", [this] { return evictions(); });
  reg.add_counter(prefix + ".prefetch_displacements",
                  [this] { return prefetch_displacements(); });
}

std::uint64_t Cache::pib_lines() const {
  std::uint64_t n = 0;
  for (const LineMeta& m : meta_) {
    if (m.valid && m.pib) ++n;
  }
  return n;
}

void Cache::corrupt_line_for_test(Addr addr, bool pib, bool rib) {
  const std::size_t idx = find_way(line_of(addr));
  PPF_CHECK_MSG(idx != kNoWay, "corrupt_line_for_test: line not resident");
  meta_[idx].pib = pib;
  meta_[idx].rib = rib;
}

void Cache::register_checks(check::CheckRegistry& reg,
                            const std::string& prefix) const {
  reg.add(prefix, [this](check::CheckContext& ctx) {
    const std::uint64_t lines = cfg_.num_lines();
    const bool soa_ok = tags_.size() == lines && meta_.size() == lines &&
                        shadow_.size() == lines &&
                        (set_mask_ + 1) * ways_ == lines;
    ctx.require(soa_ok, "cache.soa_parallel", [&] {
      return "tags=" + std::to_string(tags_.size()) +
             " meta=" + std::to_string(meta_.size()) +
             " shadow=" + std::to_string(shadow_.size()) +
             " expected=" + std::to_string(lines);
    });
    if (!soa_ok) return;  // the per-line walks below assume the geometry
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      const LineMeta& m = meta_[i];
      if (!m.valid) continue;
      ctx.require(!m.rib || m.pib, "cache.rib_implies_pib", [&] {
        return "way index " + std::to_string(i) +
               " has RIB set on a non-prefetched line";
      });
      ctx.require(m.last_use <= stamp_ && m.fill_seq <= stamp_,
                  "cache.stamp_monotone", [&] {
                    return "way index " + std::to_string(i) + " last_use=" +
                           std::to_string(m.last_use) + " fill_seq=" +
                           std::to_string(m.fill_seq) + " > stamp=" +
                           std::to_string(stamp_);
                  });
      ctx.require(m.rrpv <= kRrpvMax, "cache.rrpv_range", [&] {
        return "way index " + std::to_string(i) + " rrpv=" +
               std::to_string(m.rrpv) + " > " + std::to_string(kRrpvMax);
      });
    }
    for (std::uint64_t set = 0; set <= set_mask_; ++set) {
      const std::size_t base = static_cast<std::size_t>(set * ways_);
      for (std::size_t a = 0; a < ways_; ++a) {
        if (!meta_[base + a].valid) continue;
        for (std::size_t b = a + 1; b < ways_; ++b) {
          ctx.require(!meta_[base + b].valid ||
                          tags_[base + a] != tags_[base + b],
                      "cache.duplicate_line", [&] {
                        return "set " + std::to_string(set) + " ways " +
                               std::to_string(a) + " and " + std::to_string(b) +
                               " hold the same tag";
                      });
        }
      }
    }
  });
}

}  // namespace ppf::mem
