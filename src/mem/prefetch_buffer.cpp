#include "mem/prefetch_buffer.hpp"

#include <unordered_set>

#include "check/check.hpp"
#include "common/assert.hpp"

namespace ppf::mem {

PrefetchBuffer::PrefetchBuffer(std::size_t entries) : slots_(entries) {
  PPF_CHECK(entries > 0);
}

Eviction PrefetchBuffer::make_eviction(const Slot& s, bool referenced) const {
  Eviction ev;
  ev.line = s.line;
  ev.dirty = false;
  ev.pib = true;  // everything in the buffer arrived via prefetch
  ev.rib = referenced;
  ev.trigger_pc = s.trigger_pc;
  ev.source = s.source;
  return ev;
}

std::optional<Eviction> PrefetchBuffer::probe_and_remove(LineAddr line) {
  probes_.add();
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      hits_.add();
      Eviction ev = make_eviction(s, /*referenced=*/true);
      s.valid = false;
      return ev;
    }
  }
  return std::nullopt;
}

bool PrefetchBuffer::contains(LineAddr line) const {
  for (const Slot& s : slots_) {
    if (s.valid && s.line == line) return true;
  }
  return false;
}

std::optional<Eviction> PrefetchBuffer::insert(LineAddr line, Pc trigger_pc,
                                               PrefetchSource source) {
  inserts_.add();
  Slot* victim = nullptr;
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      // Duplicate prefetch: refresh recency only.
      s.last_use = ++stamp_;
      return std::nullopt;
    }
    if (!s.valid) {
      if (victim == nullptr || victim->valid) victim = &s;
    } else if (victim == nullptr ||
               (victim->valid && s.last_use < victim->last_use)) {
      victim = &s;
    }
  }
  PPF_ASSERT(victim != nullptr);

  std::optional<Eviction> ev;
  if (victim->valid) {
    // Displaced without ever being demanded — an ineffective prefetch.
    ev = make_eviction(*victim, /*referenced=*/false);
  }
  victim->valid = true;
  victim->line = line;
  victim->trigger_pc = trigger_pc;
  victim->source = source;
  victim->last_use = ++stamp_;
  return ev;
}

std::vector<Eviction> PrefetchBuffer::drain() {
  std::vector<Eviction> out;
  for (Slot& s : slots_) {
    if (s.valid) {
      out.push_back(make_eviction(s, /*referenced=*/false));
      s.valid = false;
    }
  }
  return out;
}

std::size_t PrefetchBuffer::size() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) n += s.valid ? 1 : 0;
  return n;
}

void PrefetchBuffer::register_checks(check::CheckRegistry& reg,
                                     const std::string& prefix) const {
  reg.add(prefix, [this](check::CheckContext& ctx) {
    std::unordered_set<LineAddr> lines;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (!s.valid) continue;
      ctx.require(lines.insert(s.line).second, "pfbuf.duplicate_line", [&] {
        return "line " + std::to_string(s.line) + " buffered twice";
      });
      ctx.require(s.last_use <= stamp_, "pfbuf.stamp_monotone", [&] {
        return "slot " + std::to_string(i) + " last_use=" +
               std::to_string(s.last_use) + " > stamp=" +
               std::to_string(stamp_);
      });
    }
  });
}

void PrefetchBuffer::reset_stats() {
  probes_.reset();
  hits_.reset();
  inserts_.reset();
}

}  // namespace ppf::mem
