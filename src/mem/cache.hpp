// Set-associative cache model with the pollution-filter feedback bits.
//
// Every line carries the two control bits the paper adds to the L1 tag
// array: the Prefetch Indication Bit (PIB — "this line was brought in by a
// prefetch") and the Reference Indication Bit (RIB — "this prefetched line
// was referenced at least once"). The NSP prefetcher's per-line tag bit and
// the SDP's per-L2-line shadow directory state also live here so the cache
// remains the single tag array, as in real hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/replacement.hpp"

namespace ppf::obs {
class MetricRegistry;
}
namespace ppf::check {
class CheckRegistry;
}

namespace ppf::mem {

struct CacheConfig {
  std::string name = "L1D";
  std::uint64_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t associativity = 1;  ///< 0 means fully associative
  Cycle latency = 1;
  std::uint32_t ports = 3;
  ReplacementKind replacement = ReplacementKind::Lru;

  [[nodiscard]] std::uint64_t num_lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint64_t num_sets() const {
    const std::uint64_t ways =
        associativity == 0 ? num_lines() : associativity;
    return num_lines() / ways;
  }
};

/// Metadata describing how a fill was produced, recorded into the line.
struct FillInfo {
  bool is_prefetch = false;
  Pc trigger_pc = 0;                ///< PC of the instruction that caused it
  PrefetchSource source = PrefetchSource::Software;
  bool dirty = false;               ///< restore-dirty (victim-cache recall)
};

/// Result of a demand (or prefetch-probe) lookup.
struct AccessResult {
  bool hit = false;
  /// Line had PIB set and this is the first demand touch (RIB flipped 0->1).
  bool first_use_of_prefetch = false;
  /// Line carried the NSP tag bit at the time of access (trigger condition).
  bool hit_nsp_tagged = false;
  /// Valid when first_use_of_prefetch: who prefetched the line.
  PrefetchSource source = PrefetchSource::Software;
};

/// Record of an evicted line, handed to the pollution filter and the
/// prefetch classifier.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
  bool pib = false;
  bool rib = false;
  Pc trigger_pc = 0;
  PrefetchSource source = PrefetchSource::Software;
};

/// Per-L2-line shadow directory entry used by the SDP prefetcher.
struct ShadowEntry {
  bool shadow_valid = false;
  LineAddr shadow = 0;
  bool confirmation = false;  ///< was the shadow prefetch ever used
  bool tried = false;         ///< a prefetch of this shadow was issued
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg, std::uint64_t rng_seed = 1);

  // --- geometry ------------------------------------------------------
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] LineAddr line_of(Addr a) const { return a >> offset_bits_; }
  [[nodiscard]] Addr base_of(LineAddr l) const { return l << offset_bits_; }

  // --- access path ---------------------------------------------------

  /// Demand lookup: updates replacement state and the RIB on hit, records
  /// hit/miss statistics. Does NOT allocate on miss; call fill() when the
  /// data returns from the next level. Defined inline: this is the single
  /// hottest call on the demand path (one per load/store plus one per
  /// I-line change), and the call overhead itself was measurable.
  AccessResult access(Addr addr, AccessType type) {
    const LineAddr line = line_of(addr);
    const auto t = static_cast<std::size_t>(type);
    AccessResult r;
    const std::size_t idx = find_way(line);
    if (idx != kNoWay) {
      LineMeta& m = meta_[idx];
      r.hit = true;
      r.hit_nsp_tagged = m.nsp_tag;
      if (type != AccessType::Prefetch) {
        // Demand touch: consume the NSP tag and mark the prefetched line
        // as referenced (PIB/RIB protocol from Section 4 of the paper).
        m.nsp_tag = false;
        if (m.pib && !m.rib) {
          m.rib = true;
          r.first_use_of_prefetch = true;
          r.source = m.source;
        }
        if (type == AccessType::Store) m.dirty = true;
        m.last_use = ++stamp_;
        // RRIP hit promotion (near-immediate re-reference). Written
        // unconditionally — one byte store is cheaper than a policy
        // branch, and non-RRIP policies never read it.
        m.rrpv = 0;
      }
      hits_[t].add();
    } else {
      misses_[t].add();
    }
    return r;
  }

  /// Probe without any side effects (no stats, no LRU update).
  [[nodiscard]] bool contains(Addr addr) const {
    return find_way(line_of(addr)) != kNoWay;
  }

  /// Allocate a line for addr, evicting as needed.
  /// Returns the eviction record when a valid line was displaced.
  std::optional<Eviction> fill(Addr addr, const FillInfo& info);

  /// Invalidate a line if present; returns its eviction record.
  std::optional<Eviction> invalidate(Addr addr);

  /// Drain every valid line (end-of-simulation classification).
  [[nodiscard]] std::vector<Eviction> drain();

  // --- per-line prefetcher state --------------------------------------

  /// NSP tag bit: set on prefetch fill, cleared on demand touch.
  void set_nsp_tag(Addr addr, bool value);

  /// Shadow-directory entry for the set/way holding addr (SDP, L2 only).
  /// Returns nullptr when the line is not resident.
  ShadowEntry* shadow_entry(Addr addr);

  /// Recency information about the way a fill for `addr` would displace:
  /// nullopt when an invalid way exists (a "free" fill), otherwise the
  /// age of the victim in touch-sequence steps (current stamp minus the
  /// victim's last use). Used by the dead-block prefetch gate.
  [[nodiscard]] std::optional<std::uint64_t> victim_age(Addr addr) const;

  /// Monotone touch/fill sequence counter (units of victim_age).
  [[nodiscard]] std::uint64_t current_stamp() const { return stamp_; }

  // --- statistics ------------------------------------------------------
  [[nodiscard]] std::uint64_t hits(AccessType t) const;
  [[nodiscard]] std::uint64_t misses(AccessType t) const;
  [[nodiscard]] std::uint64_t total_hits() const;
  [[nodiscard]] std::uint64_t total_misses() const;
  [[nodiscard]] std::uint64_t fills() const { return fills_.value(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.value(); }
  /// Demand misses whose victim was an unreferenced prefetched line would
  /// not be pollution; pollution_evictions counts evictions of *referenced
  /// demand-fetched or referenced* lines displaced by prefetch fills.
  [[nodiscard]] std::uint64_t prefetch_displacements() const {
    return prefetch_displacements_.value();
  }

  /// Register this cache's counters as `prefix.metric` (ppf::obs).
  void register_obs(obs::MetricRegistry& reg, const std::string& prefix) const;

  /// Register this cache's structural invariants (ppf::check): SoA array
  /// agreement, RIB⇒PIB, per-set tag uniqueness, stamp monotonicity.
  void register_checks(check::CheckRegistry& reg,
                       const std::string& prefix) const;

  /// Valid lines currently carrying the PIB — prefetched lines that are
  /// still resident, i.e. not yet classified good/bad by an eviction or
  /// the end-of-run drain. The in-flight term of the classifier
  /// conservation law (hier.classifier_conservation).
  [[nodiscard]] std::uint64_t pib_lines() const;

  /// Test-only: overwrite a resident line's PIB/RIB bits so invariant
  /// tests can prove a real corruption is caught. Never called by the
  /// simulator.
  void corrupt_line_for_test(Addr addr, bool pib, bool rib);

  void reset_stats();

 private:
  // Tag/metadata split (SoA): the lookup loop in find_way() touches only
  // the dense tags_ array (8 B per way) plus one byte-sized valid flag,
  // instead of dragging a ~64 B Line struct through the data cache per
  // probed way. Everything a hit or fill mutates lives in LineMeta;
  // shadow-directory state (SDP, L2 only) is a third parallel array so
  // it never pollutes the demand path's working set.
  struct LineMeta {
    bool valid = false;
    bool dirty = false;
    bool pib = false;
    bool rib = false;
    bool nsp_tag = false;
    std::uint8_t rrpv = 0;  ///< re-reference prediction value (RRIP kinds)
    PrefetchSource source = PrefetchSource::Software;
    Pc trigger_pc = 0;
    std::uint64_t last_use = 0;
    std::uint64_t fill_seq = 0;
  };

  static constexpr std::size_t kNoWay = static_cast<std::size_t>(-1);

  [[nodiscard]] std::uint64_t set_index(LineAddr line) const {
    return line & set_mask_;
  }
  [[nodiscard]] std::uint64_t tag_of(LineAddr line) const {
    return line >> set_bits_;
  }
  [[nodiscard]] LineAddr line_from(std::uint64_t set, std::uint64_t tag) const {
    return (tag << set_bits_) | set;
  }
  /// Flat index of the way holding `line`, or kNoWay. The valid check
  /// guards against a stale tag matching; there is no reserved tag value,
  /// so any 64-bit address is representable. Inline for the same reason
  /// as access(): it runs on every probe of every level.
  [[nodiscard]] std::size_t find_way(LineAddr line) const {
    const std::uint64_t tag = tag_of(line);
    const std::size_t base = set_index(line) * ways_;
    if (ways_ == 1) {
      // Direct-mapped fast path (the paper's L1): no way loop at all.
      return tags_[base] == tag && meta_[base].valid ? base : kNoWay;
    }
    for (std::uint64_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag && meta_[base + w].valid) return base + w;
    }
    return kNoWay;
  }
  Eviction make_eviction(std::uint64_t set, std::size_t idx) const;

  CacheConfig cfg_;
  unsigned offset_bits_;
  unsigned set_bits_;
  std::uint64_t set_mask_;   ///< sets - 1, precomputed for set_index()
  std::uint64_t ways_;
  /// Touch stamps start well above zero so the LIP fill path can hand
  /// out *decreasing* stamps below every demand touch: a LIP insert
  /// lands at the stack bottom, and a newer insert lands below an older
  /// one. Only stamp differences are ever consumed (victim_age, LRU
  /// comparisons), so the offset is invisible to every other policy.
  static constexpr std::uint64_t kStampBase = 1ULL << 32;

  std::vector<std::uint64_t> tags_;  ///< sets * ways, row-major by set
  std::vector<LineMeta> meta_;       ///< parallel to tags_
  std::vector<ShadowEntry> shadow_;  ///< parallel to tags_
  std::uint64_t stamp_ = kStampBase;  ///< monotone touch/fill sequence
  std::uint64_t lip_stamp_ = kStampBase;  ///< decreasing LIP insert stamp
  Xorshift rng_;
  std::vector<WayState> scratch_view_;  ///< reused by fill(); avoids allocs

  Counter hits_[4];
  Counter misses_[4];
  Counter fills_;
  Counter evictions_;
  Counter prefetch_displacements_;
};

}  // namespace ppf::mem
