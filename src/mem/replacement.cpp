#include "mem/replacement.hpp"

#include "common/assert.hpp"

namespace ppf::mem {

const char* to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::Lru: return "lru";
    case ReplacementKind::Fifo: return "fifo";
    case ReplacementKind::Random: return "random";
    case ReplacementKind::Srrip: return "srrip";
    case ReplacementKind::Brrip: return "brrip";
    case ReplacementKind::Lip: return "lip";
  }
  PPF_ASSERT_MSG(false, "unhandled ReplacementKind");
  return "?";
}

std::uint8_t insertion_rrpv(ReplacementKind kind, Xorshift& rng) {
  switch (kind) {
    case ReplacementKind::Srrip:
      return kRrpvLong;
    case ReplacementKind::Brrip:
      // 1-in-32 "long" insertion (epsilon of the bimodal policy).
      return rng.below(32) == 0 ? kRrpvLong : kRrpvMax;
    case ReplacementKind::Lru:
    case ReplacementKind::Fifo:
    case ReplacementKind::Random:
    case ReplacementKind::Lip:
      return 0;
  }
  PPF_ASSERT_MSG(false, "unhandled ReplacementKind");
  return 0;
}

std::size_t choose_victim(std::span<WayState> ways, ReplacementKind kind,
                          Xorshift& rng) {
  PPF_ASSERT(!ways.empty());
  for (std::size_t i = 0; i < ways.size(); ++i) {
    if (!ways[i].valid) return i;
  }
  switch (kind) {
    case ReplacementKind::Lru:
    case ReplacementKind::Lip: {
      // LIP differs from LRU only at insertion (the fill path hands new
      // lines the oldest stamp instead of the newest); the victim scan
      // is the same stack-bottom search.
      std::size_t victim = 0;
      for (std::size_t i = 1; i < ways.size(); ++i) {
        if (ways[i].last_use < ways[victim].last_use) victim = i;
      }
      return victim;
    }
    case ReplacementKind::Fifo: {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < ways.size(); ++i) {
        if (ways[i].fill_seq < ways[victim].fill_seq) victim = i;
      }
      return victim;
    }
    case ReplacementKind::Random:
      return static_cast<std::size_t>(rng.below(ways.size()));
    case ReplacementKind::Srrip:
    case ReplacementKind::Brrip: {
      // Find the first distant way; if none, age the whole set and
      // retry. Terminates: each aging round raises the maximum rrpv by
      // one until it hits kRrpvMax.
      for (;;) {
        for (std::size_t i = 0; i < ways.size(); ++i) {
          if (ways[i].rrpv >= kRrpvMax) return i;
        }
        for (WayState& w : ways) ++w.rrpv;
      }
    }
  }
  PPF_ASSERT_MSG(false, "unhandled ReplacementKind");
  return 0;
}

}  // namespace ppf::mem
