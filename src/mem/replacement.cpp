#include "mem/replacement.hpp"

#include "common/assert.hpp"

namespace ppf::mem {

std::size_t choose_victim(std::span<const WayState> ways, ReplacementKind kind,
                          Xorshift& rng) {
  PPF_ASSERT(!ways.empty());
  for (std::size_t i = 0; i < ways.size(); ++i) {
    if (!ways[i].valid) return i;
  }
  switch (kind) {
    case ReplacementKind::Lru: {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < ways.size(); ++i) {
        if (ways[i].last_use < ways[victim].last_use) victim = i;
      }
      return victim;
    }
    case ReplacementKind::Fifo: {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < ways.size(); ++i) {
        if (ways[i].fill_seq < ways[victim].fill_seq) victim = i;
      }
      return victim;
    }
    case ReplacementKind::Random:
      return static_cast<std::size_t>(rng.below(ways.size()));
  }
  return 0;
}

}  // namespace ppf::mem
