// Replacement policies for set-associative caches.
#pragma once

#include <cstdint>
#include <span>

#include "common/random.hpp"
#include "common/types.hpp"

namespace ppf::mem {

enum class ReplacementKind : std::uint8_t {
  Lru,     ///< least-recently-used (default, what the paper assumes)
  Fifo,    ///< oldest fill first
  Random,  ///< uniform random way
  Srrip,   ///< static re-reference interval prediction (Jaleel et al.)
  Brrip,   ///< bimodal RRIP: mostly-distant insertion, rare long
  Lip,     ///< LRU-insertion policy: fills enter at the LRU position
};

const char* to_string(ReplacementKind k);

/// RRPV (re-reference prediction value) geometry shared by the RRIP
/// family: 2-bit counters, 0 = near-immediate re-reference, kRrpvMax =
/// distant (eviction candidate), kRrpvLong = the "long" insertion state.
inline constexpr std::uint8_t kRrpvBits = 2;
inline constexpr std::uint8_t kRrpvMax = (1U << kRrpvBits) - 1;
inline constexpr std::uint8_t kRrpvLong = kRrpvMax - 1;

/// True for policies that read/age the per-way RRPV counters.
inline constexpr bool uses_rrpv(ReplacementKind k) {
  return k == ReplacementKind::Srrip || k == ReplacementKind::Brrip;
}

/// RRPV a freshly filled line starts with. SRRIP always inserts "long"
/// (kRrpvLong); BRRIP inserts "distant" (kRrpvMax) except for a 1/32
/// chance of "long" — the bimodal throttle that protects against
/// thrashing. Non-RRIP kinds return 0. `rng` is consulted only for
/// Brrip, keeping the rng stream of every other policy untouched.
std::uint8_t insertion_rrpv(ReplacementKind kind, Xorshift& rng);

/// Per-way state the victim chooser needs. The cache keeps richer state;
/// this narrow view keeps the policy decoupled from tag-array layout.
struct WayState {
  bool valid = false;
  std::uint64_t last_use = 0;  ///< stamp of most recent touch
  std::uint64_t fill_seq = 0;  ///< stamp of fill
  std::uint8_t rrpv = 0;       ///< re-reference prediction value (RRIP)
};

/// Pick the victim way within one set.
///
/// Invalid ways are always preferred (lowest index first). `rng` is only
/// consulted for ReplacementKind::Random. The RRIP kinds age the set in
/// place (incrementing every way's rrpv until one reaches kRrpvMax), so
/// the span is mutable and the caller must write the aged values back to
/// its tag array.
std::size_t choose_victim(std::span<WayState> ways, ReplacementKind kind,
                          Xorshift& rng);

}  // namespace ppf::mem
