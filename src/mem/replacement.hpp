// Replacement policies for set-associative caches.
#pragma once

#include <cstdint>
#include <span>

#include "common/random.hpp"
#include "common/types.hpp"

namespace ppf::mem {

enum class ReplacementKind : std::uint8_t {
  Lru,     ///< least-recently-used (default, what the paper assumes)
  Fifo,    ///< oldest fill first
  Random,  ///< uniform random way
};

inline const char* to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::Lru: return "lru";
    case ReplacementKind::Fifo: return "fifo";
    case ReplacementKind::Random: return "random";
  }
  return "?";
}

/// Per-way state the victim chooser needs. The cache keeps richer state;
/// this narrow view keeps the policy decoupled from tag-array layout.
struct WayState {
  bool valid = false;
  std::uint64_t last_use = 0;  ///< stamp of most recent touch
  std::uint64_t fill_seq = 0;  ///< stamp of fill
};

/// Pick the victim way within one set.
///
/// Invalid ways are always preferred (lowest index first). `rng` is only
/// consulted for ReplacementKind::Random.
std::size_t choose_victim(std::span<const WayState> ways, ReplacementKind kind,
                          Xorshift& rng);

}  // namespace ppf::mem
