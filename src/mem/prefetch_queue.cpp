#include "mem/prefetch_queue.hpp"

#include <algorithm>
#include <unordered_set>

#include "check/check.hpp"
#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace ppf::mem {

PrefetchQueue::PrefetchQueue(std::size_t capacity) : capacity_(capacity) {
  PPF_CHECK(capacity > 0);
}

bool PrefetchQueue::push(const PrefetchQueueEntry& e) {
  const bool dup = std::any_of(
      q_.begin(), q_.end(),
      [&](const PrefetchQueueEntry& x) { return x.line == e.line; });
  if (dup) {
    squashed_dup_.add();
    return false;
  }
  if (q_.size() >= capacity_) {
    dropped_full_.add();
    return false;
  }
  q_.push_back(e);
  pushed_.add();
  return true;
}

std::optional<PrefetchQueueEntry> PrefetchQueue::pop(Cycle now) {
  if (q_.empty()) return std::nullopt;
  PrefetchQueueEntry e = q_.front();
  q_.pop_front();
  popped_.add();
  PPF_ASSERT(now >= e.enqueue_cycle);
  wait_.add(now - e.enqueue_cycle);
  return e;
}

void PrefetchQueue::squash_line(LineAddr line) {
  const auto it = std::remove_if(
      q_.begin(), q_.end(),
      [&](const PrefetchQueueEntry& x) { return x.line == line; });
  squash_removed_.add(static_cast<std::uint64_t>(q_.end() - it));
  q_.erase(it, q_.end());
}

void PrefetchQueue::register_obs(obs::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.add_counter(prefix + ".pushed", [this] { return pushed(); });
  reg.add_counter(prefix + ".squashed_duplicates",
                  [this] { return squashed_duplicates(); });
  reg.add_counter(prefix + ".dropped_full", [this] { return dropped_full(); });
  reg.add_counter(prefix + ".popped", [this] { return popped(); });
  reg.add_counter(prefix + ".squash_removed",
                  [this] { return squash_removed(); });
  reg.add_counter(prefix + ".wait_cycles", [this] { return wait_cycles(); });
  reg.add_gauge(prefix + ".occupancy",
                [this] { return static_cast<double>(size()); });
}

void PrefetchQueue::register_checks(check::CheckRegistry& reg,
                                    const std::string& prefix) const {
  reg.add(prefix, [this](check::CheckContext& ctx) {
    ctx.require(q_.size() <= capacity_, "pq.over_capacity", [&] {
      return std::to_string(q_.size()) + " queued > capacity " +
             std::to_string(capacity_);
    });
    std::unordered_set<LineAddr> lines;
    for (const PrefetchQueueEntry& e : q_) {
      ctx.require(lines.insert(e.line).second, "pq.duplicate_line", [&] {
        return "line " + std::to_string(e.line) + " queued twice";
      });
    }
    const std::uint64_t in = pushed() + depth_at_reset_;
    const std::uint64_t out = popped() + squash_removed() + q_.size();
    ctx.require(in == out, "pq.conservation", [&] {
      return "pushed " + std::to_string(pushed()) + " + depth-at-reset " +
             std::to_string(depth_at_reset_) + " != popped " +
             std::to_string(popped()) + " + squash-removed " +
             std::to_string(squash_removed()) + " + depth " +
             std::to_string(q_.size());
    });
  });
}

void PrefetchQueue::reset_stats() {
  pushed_.reset();
  squashed_dup_.reset();
  dropped_full_.reset();
  popped_.reset();
  squash_removed_.reset();
  wait_.reset();
  depth_at_reset_ = q_.size();
}

}  // namespace ppf::mem
