// Victim cache (Jouppi, ISCA 1990): a small fully-associative buffer
// holding the last few lines evicted from the L1, probed on L1 misses.
// It is the classic *conflict-miss* mitigation and, like the dedicated
// prefetch buffer of Section 5.5, a hardware alternative the pollution
// filter competes with — if pollution evictions were cheap to undo, the
// filter would matter less. bench_extras quantifies the interaction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace ppf::check {
class CheckRegistry;
}

namespace ppf::mem {

class VictimCache {
 public:
  explicit VictimCache(std::size_t entries);

  /// Record an eviction from the L1. The full eviction record is kept so
  /// a later recall preserves the PIB/RIB/trigger metadata.
  void insert(const Eviction& ev);

  /// L1-miss probe: on a hit the entry is removed and returned so the
  /// hierarchy can reinstall the line in the L1.
  std::optional<Eviction> recall(LineAddr line);

  [[nodiscard]] bool contains(LineAddr line) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  [[nodiscard]] std::uint64_t probes() const { return probes_.value(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_.value(); }

  /// Register this victim cache's structural invariants (ppf::check):
  /// bounded occupancy, no duplicate lines, stamp monotonicity.
  void register_checks(check::CheckRegistry& reg,
                       const std::string& prefix) const;

  void reset_stats();

 private:
  struct Slot {
    bool valid = false;
    Eviction record;
    std::uint64_t stamp = 0;
  };

  std::vector<Slot> slots_;
  std::uint64_t stamp_ = 0;
  mutable Counter probes_;
  Counter hits_;
  Counter inserts_;
};

}  // namespace ppf::mem
