// Dedicated fully-associative prefetch buffer (Chen et al. [5]), used by
// the Section 5.5 comparison. When enabled, prefetched lines land here
// instead of the L1; demand accesses probe it in parallel with the L1 and
// a buffer hit promotes the line into the L1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace ppf::check {
class CheckRegistry;
}

namespace ppf::mem {

class PrefetchBuffer {
 public:
  explicit PrefetchBuffer(std::size_t entries);

  /// Demand probe. On hit the entry is removed (it is promoted into the
  /// L1 by the hierarchy) and returned with rib=true — the prefetch was
  /// referenced, i.e. "good".
  std::optional<Eviction> probe_and_remove(LineAddr line);

  /// Probe without removal or LRU update.
  [[nodiscard]] bool contains(LineAddr line) const;

  /// Insert a prefetched line; returns the LRU entry it displaced, whose
  /// rib reports whether that prefetch was ever referenced.
  std::optional<Eviction> insert(LineAddr line, Pc trigger_pc,
                                 PrefetchSource source);

  /// Remove all entries (end-of-run classification).
  [[nodiscard]] std::vector<Eviction> drain();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  [[nodiscard]] std::uint64_t probes() const { return probes_.value(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_.value(); }

  /// Register this buffer's structural invariants (ppf::check): bounded
  /// occupancy, no duplicate lines, stamp monotonicity.
  void register_checks(check::CheckRegistry& reg,
                       const std::string& prefix) const;

  void reset_stats();

 private:
  struct Slot {
    bool valid = false;
    LineAddr line = 0;
    Pc trigger_pc = 0;
    PrefetchSource source = PrefetchSource::Software;
    std::uint64_t last_use = 0;
  };

  Eviction make_eviction(const Slot& s, bool referenced) const;

  std::vector<Slot> slots_;
  std::uint64_t stamp_ = 0;
  Counter probes_;
  Counter hits_;
  Counter inserts_;
};

}  // namespace ppf::mem
