// Saturating up/down counter, the storage element of the history table
// and of the bimodal branch predictor.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace ppf {

/// An n-bit saturating counter (n in [1, 8]).
///
/// The "taken"/"good" prediction convention matches 2-bit branch
/// predictors: the counter predicts positive when its value is in the
/// upper half of its range.
class SaturatingCounter {
 public:
  /// Constructs an n-bit counter with the given initial value (clamped).
  ///
  /// The default init of 2 is the weakly-positive state *for 2-bit
  /// counters only*. For bits=1 it clamps to 1 (saturated positive) and
  /// for bits>=3 it lands in the negative half — call sites that vary
  /// `bits` should say what they mean with weakly_positive() /
  /// weakly_negative() instead of passing a literal.
  explicit SaturatingCounter(unsigned bits = 2, std::uint8_t init = 2)
      : max_(static_cast<std::uint8_t>((1U << bits) - 1)),
        value_(init > max_ ? max_ : init) {
    PPF_CHECK(bits >= 1 && bits <= 8);
  }

  /// The weakest state that still predicts positive: max/2 + 1
  /// (2 for 2-bit, 1 for 1-bit, 4 for 3-bit).
  [[nodiscard]] static SaturatingCounter weakly_positive(unsigned bits) {
    SaturatingCounter c(bits, 0);
    c.value_ = static_cast<std::uint8_t>(c.max_ / 2 + 1);
    return c;
  }

  /// The strongest state that still predicts negative: max/2
  /// (1 for 2-bit, 0 for 1-bit, 3 for 3-bit).
  [[nodiscard]] static SaturatingCounter weakly_negative(unsigned bits) {
    SaturatingCounter c(bits, 0);
    c.value_ = static_cast<std::uint8_t>(c.max_ / 2);
    return c;
  }

  /// Increment toward saturation.
  void increment() {
    if (value_ < max_) ++value_;
  }

  /// Decrement toward zero.
  void decrement() {
    if (value_ > 0) --value_;
  }

  /// Move toward (true) or away from (false) the positive prediction.
  void update(bool positive) { positive ? increment() : decrement(); }

  /// True when the counter is in the upper half of its range.
  [[nodiscard]] bool predicts_positive() const {
    return value_ > max_ / 2;
  }

  [[nodiscard]] std::uint8_t value() const { return value_; }
  [[nodiscard]] std::uint8_t max() const { return max_; }

  /// Reset to a specific value (clamped to range).
  void set(std::uint8_t v) { value_ = v > max_ ? max_ : v; }

 private:
  std::uint8_t max_;
  std::uint8_t value_;
};

}  // namespace ppf
