// Saturating up/down counter, the storage element of the history table
// and of the bimodal branch predictor.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace ppf {

/// An n-bit saturating counter (n in [1, 8]).
///
/// The "taken"/"good" prediction convention matches 2-bit branch
/// predictors: the counter predicts positive when its value is in the
/// upper half of its range.
class SaturatingCounter {
 public:
  /// Constructs an n-bit counter with the given initial value (clamped).
  explicit SaturatingCounter(unsigned bits = 2, std::uint8_t init = 2)
      : max_(static_cast<std::uint8_t>((1U << bits) - 1)),
        value_(init > max_ ? max_ : init) {
    PPF_CHECK(bits >= 1 && bits <= 8);
  }

  /// Increment toward saturation.
  void increment() {
    if (value_ < max_) ++value_;
  }

  /// Decrement toward zero.
  void decrement() {
    if (value_ > 0) --value_;
  }

  /// Move toward (true) or away from (false) the positive prediction.
  void update(bool positive) { positive ? increment() : decrement(); }

  /// True when the counter is in the upper half of its range.
  [[nodiscard]] bool predicts_positive() const {
    return value_ > max_ / 2;
  }

  [[nodiscard]] std::uint8_t value() const { return value_; }
  [[nodiscard]] std::uint8_t max() const { return max_; }

  /// Reset to a specific value (clamped to range).
  void set(std::uint8_t v) { value_ = v > max_ ? max_ : v; }

 private:
  std::uint8_t max_;
  std::uint8_t value_;
};

}  // namespace ppf
