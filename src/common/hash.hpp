// Index hash functions for direct-indexed hardware tables.
//
// Real pollution-filter hardware would index its history table with a few
// XOR gates; we provide that (FoldXor) plus stronger mixers used in the
// hash-function ablation study (bench_ablation).
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace ppf {

/// Hash family selector for table indexing.
enum class HashKind : std::uint8_t {
  Modulo,     ///< low bits only — what trivial hardware would do
  FoldXor,    ///< XOR-fold all address bits into the index width
  Fibonacci,  ///< multiplicative (golden-ratio) hashing
  Mix64,      ///< full 64-bit finalizer (splitmix64-style)
};

inline const char* to_string(HashKind k) {
  switch (k) {
    case HashKind::Modulo: return "modulo";
    case HashKind::FoldXor: return "fold-xor";
    case HashKind::Fibonacci: return "fibonacci";
    case HashKind::Mix64: return "mix64";
  }
  PPF_ASSERT_MSG(false, "unhandled HashKind");
  return "?";
}

/// XOR-fold a 64-bit key down to `index_bits` bits.
constexpr std::uint64_t fold_xor(std::uint64_t key, unsigned index_bits) {
  PPF_CHECK(index_bits >= 1 && index_bits <= 32);
  std::uint64_t h = key;
  for (unsigned w = 64; w > index_bits; w = (w + 1) / 2) {
    const unsigned half = (w + 1) / 2;
    h = (h ^ (h >> half)) & low_mask(half);
  }
  return h & low_mask(index_bits);
}

/// Multiplicative hash using the 64-bit golden ratio constant.
constexpr std::uint64_t fibonacci_hash(std::uint64_t key, unsigned index_bits) {
  PPF_CHECK(index_bits >= 1 && index_bits <= 32);
  return (key * 0x9E3779B97F4A7C15ULL) >> (64 - index_bits);
}

/// splitmix64 finalizer — a full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Apply the selected hash to produce an index in [0, 2^index_bits).
constexpr std::uint64_t table_index(HashKind kind, std::uint64_t key,
                                    unsigned index_bits) {
  switch (kind) {
    case HashKind::Modulo:
      return key & low_mask(index_bits);
    case HashKind::FoldXor:
      return fold_xor(key, index_bits);
    case HashKind::Fibonacci:
      return fibonacci_hash(key, index_bits);
    case HashKind::Mix64:
      return mix64(key) & low_mask(index_bits);
  }
  return 0;
}

}  // namespace ppf
