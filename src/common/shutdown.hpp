// Cooperative process shutdown: one flag, three ways to trip it.
//
// A ShutdownRequest turns SIGINT/SIGTERM into a level-triggered flag that
// long-running drivers (ppf_batch sweeps, the ppf_serve accept loop) poll
// between units of work. Nothing is torn down from the signal handler
// itself — the handler only stores into an atomic and writes one byte to a
// self-pipe, both async-signal-safe; the draining, flushing and exit code
// logic all run on ordinary threads that observed the flag.
//
// request() trips the same flag programmatically. That is the test hook:
// graceful-shutdown behaviour (drain in-flight jobs, flush sinks, exit 0)
// is exercised by calling request() at a deterministic point instead of
// delivering a real signal, so the tests stay portable and un-racy.
//
// The self-pipe exists for threads that block in poll()/accept() rather
// than polling a flag: including fd() in the poll set guarantees the
// sleeper wakes promptly when the flag trips, closing the classic lost
// wakeup between "checked the flag" and "went to sleep".
//
// Signal handlers are process-global, so at most one ShutdownRequest may
// have install_signal_handlers() active at a time (PPF_CHECK enforced);
// the destructor restores the previous handlers.
#pragma once

#include <atomic>

namespace ppf {

class ShutdownRequest {
 public:
  ShutdownRequest();
  ~ShutdownRequest();
  ShutdownRequest(const ShutdownRequest&) = delete;
  ShutdownRequest& operator=(const ShutdownRequest&) = delete;

  /// Route SIGINT and SIGTERM to this object. Only one instance may have
  /// handlers installed at a time; the destructor restores the previous
  /// dispositions.
  void install_signal_handlers();

  /// Trip the flag programmatically (the deterministic stand-in for a
  /// signal, used by tests and by the serve `shutdown` verb).
  void request();

  /// Has a shutdown been requested (signal or request())?
  [[nodiscard]] bool requested() const {
    return flag_.load(std::memory_order_acquire);
  }

  /// Read end of the self-pipe: becomes readable once the flag trips.
  /// Include it in poll()/select() sets to wake blocked I/O promptly.
  [[nodiscard]] int fd() const { return pipe_[0]; }

  /// Block until requested() or `ms` milliseconds elapse; returns
  /// requested(). ms < 0 waits indefinitely.
  bool wait(int ms) const;

 private:
  static void handler(int sig);

  std::atomic<bool> flag_{false};
  int pipe_[2] = {-1, -1};
  bool handlers_installed_ = false;
};

}  // namespace ppf
