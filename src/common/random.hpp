// Deterministic pseudo-random number generation for workload synthesis.
//
// std::mt19937 would work but is heavyweight for the inner loops of trace
// generation; xorshift128+ gives us speed, determinism across platforms,
// and a tiny state we can embed per-pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace ppf {

/// xorshift128+ generator. Deterministic for a given seed on all platforms.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p.
  bool chance(double p);

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

/// Zipf-distributed index sampler over [0, n) with exponent `s`.
///
/// Used to model hot/cold working-set skew in the synthetic benchmarks.
/// Precomputes the CDF once; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw an index in [0, n); index 0 is the most popular.
  std::size_t sample(Xorshift& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Produces a random cyclic permutation of [0, n) — a single ring that
/// visits every element. Used to build pointer-chase patterns whose next
/// address is unpredictable to stride/next-line prefetchers.
std::vector<std::uint32_t> make_chase_ring(std::size_t n, Xorshift& rng);

}  // namespace ppf
