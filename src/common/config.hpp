// Tiny key=value parameter parser used by examples and bench binaries to
// override simulation knobs from the command line without a heavyweight
// flags library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ppf {

/// Parses "key=value" tokens (argv style) into a typed lookup map.
///
/// Unknown keys are kept and can be enumerated; values are parsed lazily
/// by the typed getters, which throw std::invalid_argument on malformed
/// input so mistyped CLI overrides fail loudly.
class ParamMap {
 public:
  ParamMap() = default;

  /// Parse argv[1..argc); each token must look like key=value.
  static ParamMap from_args(int argc, const char* const* argv);

  /// Insert/overwrite one entry.
  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace ppf
