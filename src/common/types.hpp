// Fundamental types shared across the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace ppf {

/// Byte address in the simulated address space.
using Addr = std::uint64_t;

/// Cache-line-granular address (byte address >> line-offset bits).
using LineAddr = std::uint64_t;

/// Simulated core clock cycle.
using Cycle = std::uint64_t;

/// Simulated program counter.
using Pc = std::uint64_t;

/// Kinds of accesses presented to a cache.
enum class AccessType : std::uint8_t {
  Load,
  Store,
  Prefetch,
  InstFetch,
};

/// Where a prefetch request originated.
enum class PrefetchSource : std::uint8_t {
  Software,         ///< compiler-inserted prefetch instruction
  NextSequence,     ///< NSP hardware prefetcher
  ShadowDirectory,  ///< SDP hardware prefetcher
  Stride,           ///< stride/RPT prefetcher (extension)
  StreamBuffer,     ///< Jouppi-style stream buffers (extension)
  Markov,           ///< correlation/Markov prefetcher (extension)
  RegionPattern,    ///< PMP-style region-pattern prefetcher (extension)
};

/// Number of distinct PrefetchSource values (for per-source stat arrays).
inline constexpr std::size_t kNumPrefetchSources = 7;

const char* to_string(AccessType t);
const char* to_string(PrefetchSource s);

}  // namespace ppf
