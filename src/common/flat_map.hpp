// Open-addressed hash map from 64-bit keys to V, linear probing with
// tombstone deletion. The node-based std::unordered_map pays a heap
// allocation per insert and a pointer chase per probe; the simulator's
// line-address trackers (prefetch taxonomy, rejected-prefetch recovery)
// sit on the demand-miss path, where that overhead is measurable.
//
// Not a general-purpose container: keys are raw uint64 values (any value
// is valid, including 0 — occupancy lives in a separate state byte),
// values must be movable, and iteration order is unspecified (callers
// may only fold order-independent reductions over for_each).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace ppf {

template <typename V>
class FlatHashMap {
 public:
  explicit FlatHashMap(std::size_t min_slots = 64) {
    rehash(pow2_at_least(min_slots));
  }

  /// Pointer to the mapped value, or nullptr when absent.
  [[nodiscard]] V* find(std::uint64_t key) {
    const std::size_t idx = probe(key);
    return idx == kNotFound ? nullptr : &vals_[idx];
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    const std::size_t idx = probe(key);
    return idx == kNotFound ? nullptr : &vals_[idx];
  }

  /// Value for `key`, default-constructing on first use.
  V& get_or_insert(std::uint64_t key) {
    if (V* v = find(key)) return *v;
    return *insert_slot(key);
  }

  /// Inserts `v` only when `key` is absent; returns whether it inserted.
  bool insert_if_absent(std::uint64_t key, V v) {
    if (find(key) != nullptr) return false;
    *insert_slot(key) = std::move(v);
    return true;
  }

  /// Removes `key` if present (the slot becomes a tombstone; rehash on
  /// growth reclaims them).
  void erase(std::uint64_t key) {
    const std::size_t idx = probe(key);
    if (idx == kNotFound) return;
    state_[idx] = kTomb;
    vals_[idx] = V{};  // release owned storage eagerly
    --size_;
    ++tombs_;
  }

  void clear() {
    std::fill(state_.begin(), state_.end(), kEmpty);
    for (V& v : vals_) v = V{};
    size_ = 0;
    tombs_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Calls f(key, value) for every live entry, in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) f(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  [[nodiscard]] std::size_t probe(std::uint64_t key) const {
    std::size_t i = mix64(key) & mask_;
    while (true) {
      if (state_[i] == kEmpty) return kNotFound;
      if (state_[i] == kFull && keys_[i] == key) return i;
      i = (i + 1) & mask_;
    }
  }

  V* insert_slot(std::uint64_t key) {
    // Keep live + tombstone occupancy under ~70% so probes terminate
    // quickly; rehashing also reclaims tombstones.
    if ((size_ + tombs_ + 1) * 10 >= state_.size() * 7) {
      rehash(pow2_at_least((size_ + 1) * 4));
    }
    std::size_t i = mix64(key) & mask_;
    while (state_[i] == kFull) i = (i + 1) & mask_;
    state_[i] = kFull;
    keys_[i] = key;
    vals_[i] = V{};
    ++size_;
    return &vals_[i];
  }

  void rehash(std::size_t new_slots) {
    PPF_ASSERT((new_slots & (new_slots - 1)) == 0);
    std::vector<std::uint8_t> old_state = std::move(state_);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    state_.assign(new_slots, kEmpty);
    keys_.assign(new_slots, 0);
    vals_.clear();
    vals_.resize(new_slots);
    mask_ = new_slots - 1;
    size_ = 0;
    tombs_ = 0;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = mix64(old_keys[i]) & mask_;
      while (state_[j] == kFull) j = (j + 1) & mask_;
      state_[j] = kFull;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
      ++size_;
    }
  }

  std::vector<std::uint8_t> state_;
  std::vector<std::uint64_t> keys_;
  std::vector<V> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace ppf
