#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/types.hpp"

namespace ppf {

const char* to_string(AccessType t) {
  switch (t) {
    case AccessType::Load: return "load";
    case AccessType::Store: return "store";
    case AccessType::Prefetch: return "prefetch";
    case AccessType::InstFetch: return "ifetch";
  }
  PPF_ASSERT_MSG(false, "unhandled AccessType");
  return "?";
}

const char* to_string(PrefetchSource s) {
  switch (s) {
    case PrefetchSource::Software: return "sw";
    case PrefetchSource::NextSequence: return "nsp";
    case PrefetchSource::ShadowDirectory: return "sdp";
    case PrefetchSource::Stride: return "stride";
    case PrefetchSource::StreamBuffer: return "stream";
    case PrefetchSource::Markov: return "markov";
    case PrefetchSource::RegionPattern: return "pmp";
  }
  PPF_ASSERT_MSG(false, "unhandled PrefetchSource");
  return "?";
}

namespace detail {

void assert_fail(std::string_view expr, std::string_view file, int line,
                 std::string_view msg) {
  std::fprintf(stderr, "ppf: assertion failed: %.*s at %.*s:%d %.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace detail
}  // namespace ppf
