// Statistics primitives: named counters, ratios, and histograms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppf {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets), with an
/// overflow bucket. Used for latency and queue-occupancy distributions.
class Histogram {
 public:
  Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

  void record(std::uint64_t sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Exact arithmetic mean of every recorded sample. Computed from the
  /// exact running sum, so — unlike percentile() — it is *not* skewed by
  /// samples landing in the overflow bucket.
  [[nodiscard]] double mean() const;
  /// Value at quantile `p` in [0, 1], linearly interpolated inside the
  /// containing bucket. Samples in the overflow bucket are assumed
  /// uniform over [range_end, max_seen], so tail percentiles are
  /// approximate once overflow() > 0. The result never exceeds
  /// max_seen() (p=1.0 is exact) and is never NaN; out-of-range or NaN
  /// `p` is clamped into [0, 1]. 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::uint64_t max_seen() const { return max_seen_; }

  void reset();

 private:
  std::uint64_t bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_seen_ = 0;
};

/// Safe ratio: returns 0 when the denominator is 0.
double ratio(std::uint64_t num, std::uint64_t den);

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

/// Geometric mean of a vector of positive values (0 for empty input).
double geomean_of(const std::vector<double>& xs);

}  // namespace ppf
