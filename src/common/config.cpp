#include "common/config.hpp"

#include <stdexcept>

namespace ppf {
namespace {

std::string bad_value(std::string_view key, const std::string& value) {
  std::string m = "malformed value for parameter '";
  m.append(key);
  m += "': '";
  m += value;
  m += "'";
  return m;
}

}  // namespace

ParamMap ParamMap::from_args(int argc, const char* const* argv) {
  ParamMap p;
  for (int i = 1; i < argc; ++i) {
    const std::string_view tok(argv[i]);
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" +
                                  std::string(tok) + "'");
    }
    std::string key(tok.substr(0, eq));
    if (p.has(key)) {
      // Letting the last duplicate win silently is how a typo'd sweep
      // runs the wrong config; reject like unknown keys (drivers exit 2).
      throw std::invalid_argument("duplicate key '" + key +
                                  "': each key may be given at most once");
    }
    p.set(std::move(key), std::string(tok.substr(eq + 1)));
  }
  return p;
}

void ParamMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ParamMap::has(std::string_view key) const {
  return entries_.find(std::string(key)) != entries_.end();
}

std::uint64_t ParamMap::get_u64(std::string_view key,
                                std::uint64_t fallback) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return fallback;
  // std::stoull accepts a leading '-' and silently wraps it modulo 2^64
  // ("-1" -> 18446744073709551615), which is never what a knob override
  // means; it also parses whitespace-only values as "no digits" only
  // after skipping them. Reject both shapes up front.
  const std::size_t first = it->second.find_first_not_of(" \t");
  if (first == std::string::npos || it->second[first] == '-') {
    throw std::invalid_argument(bad_value(key, it->second));
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(it->second, &pos, 0);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(bad_value(key, it->second));
  }
}

double ParamMap::get_double(std::string_view key, double fallback) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(bad_value(key, it->second));
  }
}

bool ParamMap::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument(bad_value(key, v));
}

std::string ParamMap::get_string(std::string_view key,
                                 std::string fallback) const {
  const auto it = entries_.find(std::string(key));
  return it == entries_.end() ? fallback : it->second;
}

}  // namespace ppf
