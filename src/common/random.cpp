#include "common/random.hpp"

#include <cmath>
#include <numeric>

#include "common/hash.hpp"

namespace ppf {

Xorshift::Xorshift(std::uint64_t seed) {
  // Expand the seed through splitmix64 so nearby seeds give unrelated
  // streams; ensure a nonzero state.
  s0_ = mix64(seed + 0x9E3779B97F4A7C15ULL);
  s1_ = mix64(s0_ + 0x9E3779B97F4A7C15ULL);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

std::uint64_t Xorshift::next() {
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint64_t Xorshift::below(std::uint64_t bound) {
  PPF_ASSERT(bound != 0);
  // Rejection-free multiply-shift reduction; bias is negligible for the
  // bounds used in workload generation (< 2^32). __extension__ silences
  // -Wpedantic for the 128-bit intermediate (GCC/Clang builtin).
  __extension__ using uint128 = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<uint128>(next()) * bound) >>
                                    64);
}

std::uint64_t Xorshift::between(std::uint64_t lo, std::uint64_t hi) {
  PPF_ASSERT(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Xorshift::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xorshift::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  PPF_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Xorshift& rng) const {
  const double u = rng.uniform();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::vector<std::uint32_t> make_chase_ring(std::size_t n, Xorshift& rng) {
  PPF_CHECK(n >= 1);
  // Sattolo's algorithm: produces a uniformly random single-cycle
  // permutation, so the chase visits all n slots before repeating.
  std::vector<std::uint32_t> next(n);
  std::iota(next.begin(), next.end(), 0U);
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.below(i);  // j in [0, i)
    std::swap(next[i], next[j]);
  }
  return next;
}

}  // namespace ppf
