// Bit-manipulation helpers for cache/table geometry.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace ppf {

/// True iff v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power-of-two value.
constexpr unsigned log2_exact(std::uint64_t v) {
  PPF_ASSERT(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Extract bits [lo, lo+n) of v.
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned n) {
  PPF_ASSERT(n <= 64);
  const std::uint64_t mask = (n >= 64) ? ~0ULL : ((1ULL << n) - 1);
  return (v >> lo) & mask;
}

/// Mask with the low n bits set.
constexpr std::uint64_t low_mask(unsigned n) {
  return (n >= 64) ? ~0ULL : ((1ULL << n) - 1);
}

}  // namespace ppf
