#include "common/stats.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ppf {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width), buckets_(num_buckets, 0) {
  PPF_CHECK(bucket_width > 0);
  PPF_CHECK(num_buckets > 0);
}

void Histogram::record(std::uint64_t sample) {
  const std::size_t idx = static_cast<std::size_t>(sample / bucket_width_);
  if (idx < buckets_.size())
    ++buckets_[idx];
  else
    ++overflow_;
  ++count_;
  sum_ += sample;
  if (sample > max_seen_) max_seen_ = sample;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  PPF_ASSERT(i < buckets_.size());
  return buckets_[i];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  // `!(p > 0)` also catches NaN, which would otherwise fall through every
  // bucket comparison and poison the overflow interpolation below.
  if (!(p > 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double hi_clamp = static_cast<double>(max_seen_);
  const double target = p * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t b = buckets_[i];
    if (b > 0 && static_cast<double>(cum + b) >= target) {
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(b);
      const double v = (static_cast<double>(i) + within) *
                       static_cast<double>(bucket_width_);
      // The in-bucket sweep can overshoot the data (single sample 5 in
      // [0,10) would report p=1.0 as 10): never exceed max_seen.
      return v < hi_clamp ? v : hi_clamp;
    }
    cum += b;
  }
  // Quantile falls in the overflow bucket: interpolate over
  // [range_end, max_seen] (uniform assumption — approximate).
  const double lo =
      static_cast<double>(bucket_width_) * static_cast<double>(buckets_.size());
  if (overflow_ == 0) return lo < hi_clamp ? lo : hi_clamp;
  const double hi = hi_clamp > lo ? hi_clamp : lo;
  const double within =
      (target - static_cast<double>(cum)) / static_cast<double>(overflow_);
  return lo + within * (hi - lo);
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  overflow_ = 0;
  count_ = 0;
  sum_ = 0;
  max_seen_ = 0;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    PPF_ASSERT(x > 0.0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace ppf
