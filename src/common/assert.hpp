// Lightweight contract checks, active in all build types.
//
// The simulator is deterministic; a violated invariant means a modelling
// bug, so we always fail fast rather than compile the checks out.
#pragma once

#include <string_view>

namespace ppf::detail {

[[noreturn]] void assert_fail(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace ppf::detail

#define PPF_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::ppf::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define PPF_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::ppf::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)
