// Contract checks, in two strengths.
//
// The simulator is deterministic; a violated invariant means a modelling
// bug, so we fail fast — but not all checks can afford to stay on:
//
//   PPF_CHECK / PPF_CHECK_MSG    — always active, in every build type.
//       For construction-time configuration validation and once-per-run
//       (or once-per-cycle) guards where the cost is irrelevant and a
//       silent bad config would poison every number downstream.
//
//   PPF_ASSERT / PPF_ASSERT_MSG  — active unless NDEBUG is defined.
//       For per-access / per-record hot-path invariants. Release and
//       RelWithDebInfo builds define NDEBUG, so these compile to nothing
//       on the simulation fast path; Debug (and the sanitizer presets)
//       keep them armed.
//
// When compiled out, PPF_ASSERT does NOT evaluate its expression — never
// put side effects in an assert. The unevaluated sizeof keeps variables
// that exist only for the check from triggering -Wunused warnings, and
// the static_cast<bool> inside it keeps the compiled-out branch exactly
// as strict as the armed one: an expression that is not contextually
// convertible to bool fails to compile in *every* build type, not just
// Debug (tests/common/assert_release_mode_test.cpp pins this down).
#pragma once

#include <string_view>

namespace ppf::detail {

[[noreturn]] void assert_fail(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace ppf::detail

#define PPF_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::ppf::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define PPF_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::ppf::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)

#ifdef NDEBUG
#define PPF_ASSERT(expr)                     \
  do {                                       \
    (void)sizeof(static_cast<bool>(expr));   \
  } while (false)
#define PPF_ASSERT_MSG(expr, msg)            \
  do {                                       \
    (void)sizeof(static_cast<bool>(expr));   \
    (void)sizeof(msg);                       \
  } while (false)
#else
#define PPF_ASSERT(expr) PPF_CHECK(expr)
#define PPF_ASSERT_MSG(expr, msg) PPF_CHECK_MSG(expr, msg)
#endif
