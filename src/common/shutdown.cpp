#include "common/shutdown.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>

#include "common/assert.hpp"

namespace ppf {

namespace {

// The signal handler can only touch async-signal-safe state, so the
// active instance is published through a plain atomic pointer; the
// PPF_CHECK in install_signal_handlers() guarantees a single writer.
std::atomic<ShutdownRequest*> g_active{nullptr};

struct sigaction g_prev_int;
struct sigaction g_prev_term;

}  // namespace

ShutdownRequest::ShutdownRequest() {
  PPF_CHECK_MSG(::pipe(pipe_) == 0, "self-pipe creation failed");
  // Non-blocking on both ends: the handler's write must never block (a
  // full pipe just means the wakeup byte is already there), and readers
  // drain without risk of hanging.
  for (int fd : pipe_) {
    const int flags = ::fcntl(fd, F_GETFL);
    PPF_CHECK(flags != -1);
    PPF_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  }
}

ShutdownRequest::~ShutdownRequest() {
  if (handlers_installed_) {
    ::sigaction(SIGINT, &g_prev_int, nullptr);
    ::sigaction(SIGTERM, &g_prev_term, nullptr);
    g_active.store(nullptr, std::memory_order_release);
  }
  ::close(pipe_[0]);
  ::close(pipe_[1]);
}

void ShutdownRequest::handler(int /*sig*/) {
  ShutdownRequest* self = g_active.load(std::memory_order_acquire);
  if (self == nullptr) return;
  self->flag_.store(true, std::memory_order_release);
  // Best-effort wakeup byte; EAGAIN means a byte is already pending,
  // which serves the same purpose.
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(self->pipe_[1], &b, 1);
}

void ShutdownRequest::install_signal_handlers() {
  ShutdownRequest* expected = nullptr;
  PPF_CHECK_MSG(
      g_active.compare_exchange_strong(expected, this,
                                       std::memory_order_acq_rel),
      "another ShutdownRequest already owns the signal handlers");
  struct sigaction sa = {};
  sa.sa_handler = &ShutdownRequest::handler;
  ::sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking accept()/read() calls should return EINTR so
  // their loops re-check requested() promptly.
  sa.sa_flags = 0;
  PPF_CHECK(::sigaction(SIGINT, &sa, &g_prev_int) == 0);
  PPF_CHECK(::sigaction(SIGTERM, &sa, &g_prev_term) == 0);
  handlers_installed_ = true;
}

void ShutdownRequest::request() {
  // Same effect as a delivered signal, minus the g_active indirection —
  // works even when no handlers are installed (the test configuration).
  flag_.store(true, std::memory_order_release);
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(pipe_[1], &b, 1);
}

bool ShutdownRequest::wait(int ms) const {
  if (requested()) return true;
  struct pollfd pfd = {};
  pfd.fd = pipe_[0];
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, ms);
    if (rc >= 0 || errno != EINTR) break;
    // EINTR: the signal we are waiting for may have just landed —
    // re-check the flag, then resume the wait.
    if (requested()) return true;
  }
  return requested();
}

}  // namespace ppf
