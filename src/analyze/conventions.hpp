// ppf::analyze — project-convention rules (the token-stream port of
// the original ppf_lint regex rules that are not catalogue checks).
//
//   no-bare-assert        C assert()/<cassert> bypass the PPF_ASSERT
//                         ladder (common/assert.hpp).
//   no-wallclock-rand     rand()/srand()/std::time()/random_device/
//                         system_clock in src/ break run determinism
//                         (steady_clock stays allowed — telemetry only).
//   obs-check-parity      a header declaring a register_obs hook must
//                         also declare register_checks.
//   obs-event-bookkeeping a PPF_OBS_EVENT probe for a classifier-shaped
//                         lifecycle kind must sit within 8 lines of the
//                         matching classifier record_* call.
//   hot-loop-no-virtual   no `virtual` and no calls through
//                         abstract-interface handles inside // ppf:hot
//                         regions.
//
// Rule IDs, messages, and firing sites match the regex originals so
// tests/lint/fixtures and muscle memory carry over; operating on tokens
// means string literals and comments can no longer produce false fires.
#pragma once

#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"

namespace ppf::analyze {

void check_conventions(const Project& p, std::vector<Diagnostic>& out);

}  // namespace ppf::analyze
