#include "analyze/source_model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace ppf::analyze {

namespace {

bool is_source_ext(const std::string& ext) {
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string top_dir_under_src(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t slash = rel.find('/', start);
  if (slash == std::string::npos) return {};
  return rel.substr(start, slash - start);
}

void collect_hot_regions(SourceFile& f) {
  std::size_t open = 0;  // 0 = not in a hot region
  for (const Token& t : f.toks) {
    if (t.kind != TokKind::Comment) continue;
    if (t.text.find("ppf:hot") != std::string::npos) {
      if (open == 0) open = t.line;
    } else if (t.text.find("ppf:cold") != std::string::npos) {
      if (open != 0) {
        f.hot_regions.emplace_back(open, t.line);
        open = 0;
      }
    }
  }
  if (open != 0) {
    f.hot_regions.emplace_back(open, static_cast<std::size_t>(-1));
  }
}

/// Scope kinds for the heuristic parse.
enum class ScopeKind { Namespace, Class, Block };

struct Scope {
  ScopeKind kind;
  std::string name;
};

bool is_keyword_not_name(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "decltype" ||
         s == "alignof" || s == "alignas" || s == "static_assert" ||
         s == "noexcept" || s == "new" || s == "delete" || s == "throw";
}

}  // namespace

bool Project::contains_word(const std::string& text, const std::string& word) {
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::string Project::read_text(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<FunctionDef> index_functions(const SourceFile& f,
                                         std::size_t file_index) {
  std::vector<FunctionDef> out;
  const std::vector<Token>& toks = f.toks;
  std::vector<Scope> scopes;

  auto skip_trivia = [&](std::size_t i) {
    while (i < toks.size() && (toks[i].kind == TokKind::Comment ||
                               toks[i].kind == TokKind::Directive)) {
      ++i;
    }
    return i;
  };
  auto is_punct = [&](std::size_t i, const char* p) {
    return i < toks.size() && toks[i].kind == TokKind::Punct &&
           toks[i].text == p;
  };
  /// Index just past the brace/paren that matches the opener at `i`.
  auto skip_balanced = [&](std::size_t i, const char* open,
                           const char* close) {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Punct) continue;
      if (toks[i].text == open) ++depth;
      else if (toks[i].text == close && --depth == 0) return i + 1;
    }
    return i;
  };

  std::size_t i = 0;
  while (i < toks.size()) {
    i = skip_trivia(i);
    if (i >= toks.size()) break;
    const Token& t = toks[i];

    if (is_punct(i, "{")) {
      scopes.push_back({ScopeKind::Block, ""});
      ++i;
      continue;
    }
    if (is_punct(i, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }

    if (t.kind == TokKind::Ident && t.text == "namespace") {
      std::size_t j = skip_trivia(i + 1);
      std::string name;
      while (j < toks.size() && toks[j].kind == TokKind::Ident) {
        name += (name.empty() ? "" : "::") + toks[j].text;
        j = skip_trivia(j + 1);
        if (is_punct(j, "::")) j = skip_trivia(j + 1);
        else break;
      }
      if (is_punct(j, "{")) {
        scopes.push_back({ScopeKind::Namespace, name});
        i = j + 1;
        continue;
      }
      i = j;  // namespace alias / using — fall through
      continue;
    }

    if (t.kind == TokKind::Ident &&
        (t.text == "class" || t.text == "struct" || t.text == "union")) {
      // Find the name (last ident before '{', ':' base list, or ';').
      std::size_t j = skip_trivia(i + 1);
      std::string name;
      while (j < toks.size()) {
        if (toks[j].kind == TokKind::Ident) {
          if (toks[j].text != "final" && toks[j].text != "alignas") {
            name = toks[j].text;
          }
          j = skip_trivia(j + 1);
          continue;
        }
        if (is_punct(j, "<")) {  // template-id in a specialization
          j = skip_balanced(j, "<", ">");
          continue;
        }
        break;
      }
      if (is_punct(j, ":")) {  // base-class list: scan to the '{'
        while (j < toks.size() && !is_punct(j, "{") && !is_punct(j, ";")) {
          if (is_punct(j, "<")) j = skip_balanced(j, "<", ">");
          else ++j;
        }
      }
      if (is_punct(j, "{") && !name.empty()) {
        scopes.push_back({ScopeKind::Class, name});
        i = j + 1;
        continue;
      }
      i = i + 1;  // forward declaration or anonymous — keep scanning
      continue;
    }

    // Candidate function definition: [~] ident ['::' ident ...] '(' ...
    if ((t.kind == TokKind::Ident && !is_keyword_not_name(t.text)) ||
        is_punct(i, "~")) {
      std::size_t name_i = i;
      bool dtor = false;
      if (is_punct(i, "~")) {
        name_i = skip_trivia(i + 1);
        dtor = true;
        if (name_i >= toks.size() || toks[name_i].kind != TokKind::Ident) {
          ++i;
          continue;
        }
      }
      // Collect the qualified chain ending at the name.
      std::vector<std::string> chain{toks[name_i].text};
      std::size_t j = skip_trivia(name_i + 1);
      while (is_punct(j, "::")) {
        std::size_t k = skip_trivia(j + 1);
        bool k_dtor = false;
        if (is_punct(k, "~")) {
          k = skip_trivia(k + 1);
          k_dtor = true;
        }
        if (k < toks.size() && toks[k].kind == TokKind::Ident) {
          chain.push_back((k_dtor ? "~" : "") + toks[k].text);
          dtor = dtor || k_dtor;
          j = skip_trivia(k + 1);
        } else {
          break;
        }
      }
      if (!is_punct(j, "(")) {
        ++i;
        continue;
      }
      const std::size_t after_parens = skip_balanced(j, "(", ")");
      // Skip declarator suffixes up to the body / terminator.
      std::size_t b = skip_trivia(after_parens);
      bool saw_arrow = false;
      while (b < toks.size()) {
        const Token& bt = toks[b];
        if (bt.kind == TokKind::Ident &&
            (bt.text == "const" || bt.text == "noexcept" ||
             bt.text == "override" || bt.text == "final" ||
             bt.text == "mutable" || bt.text == "volatile" ||
             bt.text == "try")) {
          b = skip_trivia(b + 1);
          continue;
        }
        if (is_punct(b, "&") || is_punct(b, "&&")) {
          b = skip_trivia(b + 1);
          continue;
        }
        if (is_punct(b, "(")) {  // noexcept(...)
          b = skip_trivia(skip_balanced(b, "(", ")"));
          continue;
        }
        if (is_punct(b, "->")) {  // trailing return type
          saw_arrow = true;
          b = skip_trivia(b + 1);
          continue;
        }
        if (saw_arrow && (bt.kind == TokKind::Ident || is_punct(b, "::") ||
                          is_punct(b, "*"))) {
          b = skip_trivia(b + 1);
          continue;
        }
        if (saw_arrow && is_punct(b, "<")) {
          b = skip_trivia(skip_balanced(b, "<", ">"));
          continue;
        }
        break;
      }
      bool has_body = is_punct(b, "{");
      if (!has_body && is_punct(b, ":")) {
        // Possible ctor-initializer list: the '{' at paren depth 0 ends
        // it. Bail at ';' (bitfields, labels, misparses).
        std::size_t k = b + 1;
        int pdepth = 0;
        while (k < toks.size()) {
          if (toks[k].kind == TokKind::Punct) {
            const std::string& p = toks[k].text;
            if (p == "(") ++pdepth;
            else if (p == ")") --pdepth;
            else if (p == "{" && pdepth == 0) break;
            else if (p == ";" && pdepth == 0) break;
          }
          ++k;
        }
        if (is_punct(k, "{")) {
          b = k;
          has_body = true;
        }
      }
      if (!has_body) {
        i = name_i + 1;
        continue;
      }
      const std::size_t body_open = b;
      const std::size_t body_close = skip_balanced(body_open, "{", "}");

      FunctionDef fd;
      fd.name = (dtor && chain.back()[0] != '~' ? "~" : "") + chain.back();
      fd.file = file_index;
      fd.tok_begin = body_open + 1;
      fd.tok_end = body_close > body_open ? body_close - 1 : body_open + 1;
      fd.line = toks[name_i].line;
      fd.body_end_line =
          body_close > 0 && body_close <= toks.size()
              ? toks[body_close - 1].line
              : toks.back().line;
      if (chain.size() > 1) {
        fd.class_name = chain[chain.size() - 2];
      } else {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          if (it->kind == ScopeKind::Class) {
            fd.class_name = it->name;
            break;
          }
        }
      }
      fd.qual = fd.class_name.empty() ? fd.name
                                      : fd.class_name + "::" + fd.name;
      std::string bare = fd.name[0] == '~' ? fd.name.substr(1) : fd.name;
      fd.ctor_dtor = !fd.class_name.empty() && bare == fd.class_name;
      out.push_back(fd);
      i = body_close;  // bodies are opaque to the scope scan
      continue;
    }

    ++i;
  }
  return out;
}

Project Project::load(const fs::path& root) {
  Project p;
  p.root = fs::weakly_canonical(root);

  std::vector<fs::path> paths;
  const fs::path src = p.root / "src";
  if (fs::exists(src)) {
    for (const auto& e : fs::recursive_directory_iterator(src)) {
      if (e.is_regular_file() && is_source_ext(e.path().extension().string()))
        paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& path : paths) {
    SourceFile f;
    f.rel = fs::relative(path, p.root).generic_string();
    f.dir = top_dir_under_src(f.rel);
    const std::string ext = path.extension().string();
    f.header = ext == ".hpp" || ext == ".h";
    f.toks = tokenize(read_text(path));
    collect_hot_regions(f);
    p.files.push_back(std::move(f));
  }

  for (std::size_t fi = 0; fi < p.files.size(); ++fi) {
    for (FunctionDef& fd : index_functions(p.files[fi], fi)) {
      p.funcs_by_name.emplace(fd.name, p.funcs.size());
      p.funcs.push_back(std::move(fd));
    }
  }

  p.docs_corpus = read_text(p.root / "README.md");
  const fs::path docs = p.root / "docs";
  if (fs::exists(docs)) {
    std::vector<fs::path> md;
    for (const auto& e : fs::directory_iterator(docs)) {
      if (e.is_regular_file() && e.path().extension() == ".md")
        md.push_back(e.path());
    }
    std::sort(md.begin(), md.end());
    for (const fs::path& d : md) p.docs_corpus += read_text(d);
  }
  return p;
}

const FunctionDef* Project::enclosing_function(std::size_t fi,
                                               std::size_t ti) const {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fd : funcs) {
    if (fd.file != fi) continue;
    if (ti < fd.tok_begin || ti >= fd.tok_end) continue;
    // Innermost wins (local helpers are not indexed, so spans only nest
    // via misparse; prefer the tightest).
    if (best == nullptr || fd.tok_begin > best->tok_begin) best = &fd;
  }
  return best;
}

}  // namespace ppf::analyze
