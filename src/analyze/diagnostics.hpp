// ppf::analyze — diagnostic model shared by every pass.
//
// One Diagnostic per finding: rule ID, repo-relative file, 1-based
// line/col, human message, and a fix hint. The hint is part of the
// contract — a finding a developer cannot act on is noise — so every
// pass fills it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

namespace ppf::analyze {

struct Diagnostic {
  std::string rule;     ///< rule ID ("layer-forbidden-edge", ...)
  std::string file;     ///< repo-relative, '/' separators; "" = project
  std::size_t line = 0; ///< 1-based; 0 = whole file
  std::size_t col = 0;  ///< 1-based; 0 = whole line
  std::string message;
  std::string hint;     ///< how to fix (or suppress) the finding
};

inline void sort_diagnostics(std::vector<Diagnostic>& ds) {
  std::sort(ds.begin(), ds.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule, a.message) <
                     std::tie(b.file, b.line, b.col, b.rule, b.message);
            });
}

}  // namespace ppf::analyze
