// ppf::analyze — lock discipline pass.
//
// Concurrency-facing fields in serve/runlab/obs carry a
// `// PPF_GUARDED_BY(mutex_name)` trailing comment on their declaration.
// This pass statically complements the TSan CI leg: every use of an
// annotated field inside a method of the declaring class must sit in a
// function that acquires the named mutex (std::lock_guard /
// unique_lock / scoped_lock naming it, or an explicit .lock() /
// .try_lock() on it) *before* the use.
//
//   lock-unguarded-field  annotated field touched without the mutex
//   lock-unknown-mutex    annotation names a mutex the file never
//                         declares (typo'd annotations must not pass)
//
// Constructors and destructors are exempt (single-threaded by
// contract: no other thread holds a reference yet / anymore). A
// deliberate lock-free access is suppressed with `// ppf:lock-ok(<why>)`
// on the use line or the function's definition line.
#pragma once

#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"

namespace ppf::analyze {

void check_locks(const Project& p, std::vector<Diagnostic>& out);

}  // namespace ppf::analyze
