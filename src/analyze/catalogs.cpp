#include "analyze/catalogs.hpp"

#include <string>

namespace ppf::analyze {

namespace {

struct CatalogEntry {
  std::string text;
  std::size_t line = 0;
  std::size_t col = 0;
};

const SourceFile* find_file(const Project& p, const std::string& rel) {
  for (const SourceFile& f : p.files) {
    if (f.rel == rel) return &f;
  }
  return nullptr;
}

/// First string literal of each top-level `{...}` entry inside the
/// first brace initializer of `fn_name`'s body in `f`. This is the
/// shape every ppf catalogue uses:
///   static const std::vector<Doc> docs = { {"name", "help"}, ... };
std::vector<CatalogEntry> collect_catalog(const Project& p,
                                          const SourceFile& f,
                                          const std::string& fn_name) {
  std::vector<CatalogEntry> out;
  const FunctionDef* fn = nullptr;
  for (const FunctionDef& fd : p.funcs) {
    if (&p.files[fd.file] == &f && fd.name == fn_name) {
      fn = &fd;
      break;
    }
  }
  if (fn == nullptr) return out;
  const std::vector<Token>& toks = f.toks;
  // Find `= {` inside the body, then walk entries at depth 1.
  std::size_t i = fn->tok_begin;
  for (; i < fn->tok_end; ++i) {
    if (toks[i].kind == TokKind::Punct && toks[i].text == "=" &&
        i + 1 < fn->tok_end && toks[i + 1].kind == TokKind::Punct &&
        toks[i + 1].text == "{")
      break;
  }
  if (i >= fn->tok_end) return out;
  int depth = 0;
  bool entry_open = false;
  for (std::size_t j = i + 1; j < fn->tok_end; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") {
        ++depth;
        if (depth == 2) entry_open = true;
      } else if (t.text == "}") {
        if (depth == 2) entry_open = false;
        if (--depth == 0) break;
      }
      continue;
    }
    if (entry_open && t.kind == TokKind::String) {
      out.push_back({t.text, t.line, t.col});
      entry_open = false;  // only the first string per entry is the key
    }
  }
  return out;
}

bool is_dotted_id(const std::string& s) {
  if (s.empty() || !(s[0] >= 'a' && s[0] <= 'z')) return false;
  bool has_dot = false;
  char prev = '\0';
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.') {
      if (prev == '.' || prev == '\0') return false;
      has_dot = true;
    }
    prev = c;
  }
  return has_dot && prev != '.';
}

bool matching_close(const std::string& open, const std::string& tok,
                    int& depth) {
  const std::string close = open == "(" ? ")" : "}";
  if (tok == open) ++depth;
  else if (tok == close) --depth;
  return depth == 0;
}

}  // namespace

void check_catalogs(const Project& p, std::vector<Diagnostic>& out) {
  const std::string checking_md =
      Project::read_text(p.root / "docs" / "CHECKING.md");
  const std::string diff_md = Project::read_text(p.root / "docs" / "DIFF.md");
  const std::string serve_md =
      Project::read_text(p.root / "docs" / "SERVE.md");
  const std::string obs_md =
      Project::read_text(p.root / "docs" / "OBSERVABILITY.md");

  // --- config override keys -> README.md + docs/*.md --------------------
  if (const SourceFile* f = find_file(p, "src/sim/config_apply.cpp")) {
    for (const CatalogEntry& e : collect_catalog(p, *f, "override_docs")) {
      if (!Project::contains_word(p.docs_corpus, e.text)) {
        out.push_back({"config-key-docs", f->rel, e.line, e.col,
                       "override key '" + e.text +
                           "' not documented in docs/*.md or README.md",
                       "document the key in docs/CONFIG.md"});
      }
    }
  }

  // --- registry policy keys -> README.md + docs/*.md --------------------
  // The registry's builtin doc tables are catalogues too: every policy a
  // user can name in filter=/prefetchers=/replacement= must appear in the
  // docs corpus, so registering a policy without documenting it fails
  // the same way an undocumented override key does.
  if (const SourceFile* f = find_file(p, "src/registry/builtin.cpp")) {
    const struct {
      const char* fn;
      const char* what;
    } tables[] = {{"builtin_filter_docs", "filter"},
                  {"builtin_prefetcher_docs", "prefetcher"},
                  {"builtin_replacement_docs", "replacement policy"}};
    for (const auto& table : tables) {
      for (const CatalogEntry& e : collect_catalog(p, *f, table.fn)) {
        if (!Project::contains_word(p.docs_corpus, e.text)) {
          out.push_back({"config-key-docs", f->rel, e.line, e.col,
                         "registry " + std::string(table.what) + " key '" +
                             e.text +
                             "' not documented in docs/*.md or README.md",
                         "document the key in docs/PLUGINS.md"});
        }
      }
    }
  }

  // --- serve verbs + error codes -> docs/SERVE.md -----------------------
  if (const SourceFile* f = find_file(p, "src/serve/protocol.cpp")) {
    const struct {
      const char* fn;
      const char* what;
    } tables[] = {{"verb_docs", "verb"}, {"error_code_docs", "error code"}};
    for (const auto& table : tables) {
      for (const CatalogEntry& e : collect_catalog(p, *f, table.fn)) {
        if (!Project::contains_word(serve_md, e.text)) {
          out.push_back({"serve-verb-docs", f->rel, e.line, e.col,
                         "protocol " + std::string(table.what) + " '" +
                             e.text + "' not documented in docs/SERVE.md",
                         "document it in the docs/SERVE.md protocol "
                         "tables"});
        }
      }
    }
  }

  // --- span names -> docs/OBSERVABILITY.md ------------------------------
  if (const SourceFile* f = find_file(p, "src/obs/span.cpp")) {
    for (const CatalogEntry& e : collect_catalog(p, *f, "span_name_docs")) {
      if (!Project::contains_word(obs_md, e.text)) {
        out.push_back({"span-name-docs", f->rel, e.line, e.col,
                       "span name '" + e.text +
                           "' not documented in docs/OBSERVABILITY.md",
                       "document it in the docs/OBSERVABILITY.md span "
                       "catalogue"});
      }
    }
  }

  for (const SourceFile& f : p.files) {
    const std::vector<Token>& toks = f.toks;

    // --- invariant IDs at require()/fail()/CheckFailure sites -----------
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Ident) continue;
      std::string open;
      if ((t.text == "require" || t.text == "fail") && i + 1 < toks.size() &&
          toks[i + 1].kind == TokKind::Punct && toks[i + 1].text == "(") {
        open = "(";
      } else if (t.text == "CheckFailure" && i + 1 < toks.size() &&
                 toks[i + 1].kind == TokKind::Punct &&
                 toks[i + 1].text == "{") {
        open = "{";
      } else {
        continue;
      }
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Punct &&
            matching_close(open, toks[j].text, depth))
          break;
        // Convention: the ID literal sits on the site line or within
        // the next two (continuation) lines — later strings are
        // human-readable message text, not IDs.
        if (toks[j].line > t.line + 2) break;
        if (toks[j].kind == TokKind::String && is_dotted_id(toks[j].text) &&
            checking_md.find(toks[j].text) == std::string::npos) {
          out.push_back({"invariant-id-docs", f.rel, toks[j].line,
                         toks[j].col,
                         "invariant ID \"" + toks[j].text +
                             "\" not documented in docs/CHECKING.md",
                         "add the invariant to the docs/CHECKING.md "
                         "catalogue"});
        }
      }
    }

    // --- diff oracle IDs in src/diff -> docs/DIFF.md ---------------------
    if (f.rel.rfind("src/diff/", 0) == 0) {
      for (const Token& t : toks) {
        if (t.kind != TokKind::String) continue;
        if (t.text.rfind("diff.", 0) != 0 || !is_dotted_id(t.text)) continue;
        if (diff_md.find(t.text) == std::string::npos) {
          out.push_back({"diff-oracle-docs", f.rel, t.line, t.col,
                         "oracle ID \"" + t.text +
                             "\" not documented in docs/DIFF.md",
                         "add the oracle to the docs/DIFF.md catalogue"});
        }
      }
    }
  }
}

}  // namespace ppf::analyze
