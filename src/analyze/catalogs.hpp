// ppf::analyze — unified catalogs pass.
//
// The repo keeps several self-describing catalogues whose entries users
// see in CLIs, violation reports, and the serve protocol: config
// override keys (sim::override_docs), serve verbs and error codes
// (serve::verb_docs / error_code_docs), obs span names
// (obs::span_name_docs), invariant IDs (ctx.require/fail +
// CheckFailure sites), and diff oracle IDs ("diff.*" literals in
// src/diff). Each entry must be documented word-for-word in its home
// doc. ppf_lint enforced this with six per-rule regex scanners; this
// pass replaces them with one symbol-table-backed extractor over the
// token stream — catalogue entries are (definition site, identifier,
// home doc) triples, immune to line wrapping and comment noise.
//
// Rule IDs keep their ppf_lint names (config-key-docs,
// serve-verb-docs, span-name-docs, invariant-id-docs,
// diff-oracle-docs) so baselines, fixtures, and muscle memory carry
// over.
#pragma once

#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"

namespace ppf::analyze {

void check_catalogs(const Project& p, std::vector<Diagnostic>& out);

}  // namespace ppf::analyze
