// ppf::analyze — determinism taint pass.
//
// The repo's headline correctness claim — byte-identical results at any
// worker count, cold or snapshot path — rests on the simulation hot
// path never consulting a non-deterministic source. ppf_lint's
// no-wallclock-rand rule checks single lines; this pass upgrades it to
// reachability: build an approximate intra-project call graph, seed it
// with the hot-path roots, and flag any *reachable* function that
//
//   taint-wallclock       calls rand/srand/std::time/std::clock,
//                         gettimeofday, names random_device or
//                         system_clock (steady_clock stays sanctioned:
//                         it feeds telemetry only, never results)
//   taint-unordered-iter  iterates a std::unordered_* container
//                         (.begin()/.cbegin() or a range-for) — element
//                         order is implementation- and address-
//                         dependent, so any fold over it can fork
//   taint-ptr-hash        instantiates std::hash over a pointer type —
//                         address-dependent values leak into results
//
// Roots: every function overlapping a `// ppf:hot` region, plus any
// function with a `// ppf:taint-root` comment within the two lines
// above its definition. Calls resolve by unqualified name (an
// over-approximation — see docs/ANALYSIS.md for what that implies).
// A deliberate hazard is suppressed with `// ppf:taint-ok(<why>)` on
// the hazard's line.
#pragma once

#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"

namespace ppf::analyze {

void check_taint(const Project& p, std::vector<Diagnostic>& out);

}  // namespace ppf::analyze
