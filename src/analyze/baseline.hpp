// ppf::analyze — finding baseline (grandfathering + ratchet).
//
// A baseline file lets the analyzer land at exit 0 on a tree with known
// findings, then ratchet: new findings fail, fixed findings become
// stale entries that `--fix-baseline` removes. Entries are
// line-number-free on purpose — `rule|file|message` — so unrelated
// edits above a grandfathered finding do not churn the file, and a
// baseline diff in review reads as "which findings appeared/went away",
// nothing else. The file is sorted, deduplicated, and path-relative;
// `--fix-baseline` regenerates it byte-deterministically.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"

namespace ppf::analyze {

/// One suppressed finding; formats as "rule|file|message".
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string message;

  friend bool operator<(const BaselineEntry& a, const BaselineEntry& b) {
    if (a.rule != b.rule) return a.rule < b.rule;
    if (a.file != b.file) return a.file < b.file;
    return a.message < b.message;
  }
  friend bool operator==(const BaselineEntry& a, const BaselineEntry& b) {
    return a.rule == b.rule && a.file == b.file && a.message == b.message;
  }
};

struct Baseline {
  std::vector<BaselineEntry> entries;  ///< sorted, unique
  bool loaded = false;                 ///< file existed and parsed

  [[nodiscard]] bool covers(const Diagnostic& d) const;
};

/// Read `path`. Missing file -> empty baseline with loaded=false (not an
/// error: a clean tree needs no baseline). Malformed lines are skipped.
Baseline load_baseline(const std::filesystem::path& path);

/// Serialize `diags` as baseline text (sorted, unique, trailing
/// newline, '#' header comment) — what --fix-baseline writes.
std::string render_baseline(const std::vector<Diagnostic>& diags);

/// Split `diags` into (new, baselined) per `b`; returns entries of `b`
/// matching nothing (stale — the ratchet's "now fix the baseline" cue).
std::vector<BaselineEntry> apply_baseline(
    const Baseline& b, const std::vector<Diagnostic>& diags,
    std::vector<Diagnostic>& fresh, std::vector<Diagnostic>& suppressed);

}  // namespace ppf::analyze
