#include "analyze/layers.hpp"

#include <algorithm>
#include <sstream>

namespace ppf::analyze {

namespace {

/// `#include "a/b.hpp"` -> "a/b.hpp"; "" for system/other directives.
std::string quoted_include(const std::string& directive) {
  std::size_t i = 1;  // past '#'
  while (i < directive.size() &&
         (directive[i] == ' ' || directive[i] == '\t'))
    ++i;
  if (directive.compare(i, 7, "include") != 0) return {};
  i += 7;
  while (i < directive.size() &&
         (directive[i] == ' ' || directive[i] == '\t'))
    ++i;
  if (i >= directive.size() || directive[i] != '"') return {};
  const std::size_t close = directive.find('"', i + 1);
  if (close == std::string::npos) return {};
  return directive.substr(i + 1, close - i - 1);
}

}  // namespace

bool LayerSpec::allows(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const auto it = allowed.find(from);
  if (it == allowed.end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) !=
         it->second.end();
}

LayerSpec parse_layer_spec(const std::string& layers_md) {
  LayerSpec spec;
  std::istringstream in(layers_md);
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("```", 0) == 0) {
      if (!in_block && line.find("ppf-layers") != std::string::npos) {
        in_block = true;
        continue;
      }
      if (in_block) break;
      continue;
    }
    if (!in_block) continue;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t arrow = line.find("->");
    if (arrow == std::string::npos) continue;
    std::istringstream head(line.substr(0, arrow));
    std::string layer;
    head >> layer;
    if (layer.empty()) continue;
    std::istringstream deps(line.substr(arrow + 2));
    std::vector<std::string> list;
    std::string dep;
    while (deps >> dep) list.push_back(dep);
    spec.allowed[layer] = std::move(list);
    spec.loaded = true;
  }
  return spec;
}

void check_layers(const Project& p, const LayerSpec& spec,
                  std::vector<Diagnostic>& out) {
  // File-level include graph over src/ (project-quoted includes only).
  // Edge list per file index; includes that do not resolve to a loaded
  // src file (e.g. generated paths) are ignored.
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < p.files.size(); ++i) by_rel[p.files[i].rel] = i;

  std::vector<std::vector<std::size_t>> edges(p.files.size());

  for (std::size_t fi = 0; fi < p.files.size(); ++fi) {
    const SourceFile& f = p.files[fi];
    for (const Token& t : f.toks) {
      if (t.kind != TokKind::Directive) continue;
      const std::string inc = quoted_include(t.text);
      if (inc.empty()) continue;
      const auto target = by_rel.find("src/" + inc);
      if (target != by_rel.end()) edges[fi].push_back(target->second);

      // Layer check: by the include's top directory, whether or not the
      // target file was loaded.
      if (!spec.loaded || f.dir.empty()) continue;
      const std::size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;  // same-dir relative
      const std::string to = inc.substr(0, slash);
      if (!spec.declares(f.dir)) {
        out.push_back(
            {"layer-undeclared", f.rel, t.line, t.col,
             "directory src/" + f.dir + " is not declared in docs/LAYERS.md",
             "add a `" + f.dir + " -> ...` line to the ppf-layers block"});
        continue;
      }
      if (!spec.declares(to)) {
        // The included side being undeclared is reported once per edge
        // too — an include into an unspecified layer cannot be judged.
        out.push_back(
            {"layer-undeclared", f.rel, t.line, t.col,
             "included directory src/" + to +
                 " is not declared in docs/LAYERS.md",
             "add a `" + to + " -> ...` line to the ppf-layers block"});
        continue;
      }
      if (!spec.allows(f.dir, to)) {
        out.push_back(
            {"layer-forbidden-edge", f.rel, t.line, t.col,
             "src/" + f.dir + " must not include src/" + to + " (\"" + inc +
                 "\"): the layer spec allows no such edge",
             "invert the dependency or amend docs/LAYERS.md if the "
             "layering itself changed"});
      }
    }
  }

  // Cycle detection: iterative DFS with colors; report each cycle once
  // with the full path (deterministic: files and edges are sorted).
  for (auto& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
  }
  enum : unsigned char { White, Grey, Black };
  std::vector<unsigned char> color(p.files.size(), White);
  std::vector<std::size_t> stack;  // current DFS path

  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  for (std::size_t start = 0; start < p.files.size(); ++start) {
    if (color[start] != White) continue;
    std::vector<Frame> dfs{{start, 0}};
    color[start] = Grey;
    stack.push_back(start);
    while (!dfs.empty()) {
      Frame& fr = dfs.back();
      if (fr.next_edge < edges[fr.node].size()) {
        const std::size_t to = edges[fr.node][fr.next_edge++];
        if (color[to] == White) {
          color[to] = Grey;
          stack.push_back(to);
          dfs.push_back({to, 0});
        } else if (color[to] == Grey) {
          // Found a cycle: stack from `to` to the top.
          std::string path;
          bool in_cycle = false;
          for (const std::size_t n : stack) {
            if (n == to) in_cycle = true;
            if (in_cycle) path += p.files[n].rel + " -> ";
          }
          path += p.files[to].rel;
          out.push_back({"layer-cycle", p.files[fr.node].rel, 0, 0,
                         "include cycle: " + path,
                         "break the cycle with a forward declaration or "
                         "by moving the shared piece down a layer"});
        }
      } else {
        color[fr.node] = Black;
        stack.pop_back();
        dfs.pop_back();
      }
    }
  }
}

}  // namespace ppf::analyze
