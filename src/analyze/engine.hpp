// ppf::analyze — pass orchestration.
//
// One Project::load, then every pass over the shared source model:
// include-layer DAG (docs/LAYERS.md spec), determinism taint, lock
// discipline, unified catalogs, and the migrated ppf_lint convention
// rules. Diagnostics come back sorted by (file, line, col, rule).
//
// `ppf_analyze` runs the full set; `ppf_lint` runs the legacy subset
// through the same engine (see legacy_lint_rules()).
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"

namespace ppf::analyze {

struct RuleInfo {
  const char* name;
  const char* help;
};

/// Every rule the engine can emit, in catalogue order.
const std::vector<RuleInfo>& all_rules();

/// The ten original ppf_lint rule IDs (the `ppf_lint` CLI's rule set).
const std::set<std::string>& legacy_lint_rules();

/// Load `root` and run the passes. `only` restricts the result to the
/// named rules (empty = all). Sorted diagnostics.
std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root,
                                     const std::set<std::string>& only = {});

}  // namespace ppf::analyze
