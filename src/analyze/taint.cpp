#include "analyze/taint.hpp"

#include <deque>
#include <map>
#include <set>
#include <string>

namespace ppf::analyze {

namespace {

bool is_call_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "decltype" ||
         s == "alignof" || s == "static_assert" || s == "noexcept" ||
         s == "catch" || s == "new" || s == "delete" || s == "throw" ||
         s == "static_cast" || s == "reinterpret_cast" ||
         s == "const_cast" || s == "dynamic_cast" || s == "assert" ||
         s == "defined";
}

/// Names that make a *call* non-deterministic when reachable from the
/// hot path. Kept as string data so the analyzer never trips its own
/// rules when analyzing this tree.
bool is_banned_call(const std::string& s) {
  return s == "rand" || s == "srand" || s == "rand_r" ||
         s == "gettimeofday" || s == "localtime" || s == "gmtime";
}

/// Type-ish names banned on sight (no call syntax needed).
bool is_banned_name(const std::string& s) {
  return s == "random_device" || s == "system_clock";
}

struct FnInfo {
  std::vector<std::size_t> callees;  ///< indices into Project::funcs
  bool root = false;
};

/// True when `toks[i]` is an identifier that reads as a call target:
/// followed by '(' and not preceded by something that makes it a
/// declaration (another identifier, '>', '*', '&').
bool reads_as_call(const std::vector<Token>& toks, std::size_t i) {
  if (toks[i].kind != TokKind::Ident) return false;
  std::size_t j = i + 1;
  while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
  if (j >= toks.size() || toks[j].kind != TokKind::Punct ||
      toks[j].text != "(")
    return false;
  for (std::size_t k = i; k-- > 0;) {
    if (toks[k].kind == TokKind::Comment) continue;
    if (toks[k].kind == TokKind::Ident) {
      // `const foo(` and friends still read as calls; `Foo bar(` does
      // not (it is a declaration of bar).
      const std::string& prev = toks[k].text;
      return prev == "return" || prev == "const" || prev == "co_return" ||
             prev == "co_await" || prev == "case" || prev == "else" ||
             prev == "do" || prev == "in";
    }
    if (toks[k].kind == TokKind::Punct) {
      const std::string& p = toks[k].text;
      return !(p == ">" || p == "*" || p == "&" || p == "&&");
    }
    return true;
  }
  return true;
}

/// Does a `// ppf:taint-ok` comment sit on `line` of `f`?
bool taint_ok_on_line(const SourceFile& f, std::size_t line) {
  for (const Token& t : f.toks) {
    if (t.kind == TokKind::Comment && t.line == line &&
        t.text.find("ppf:taint-ok") != std::string::npos)
      return true;
    if (t.line > line) break;
  }
  return false;
}

bool preceded_by_std(const std::vector<Token>& toks, std::size_t i) {
  if (i < 2) return false;
  return toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "::" &&
         toks[i - 2].kind == TokKind::Ident && toks[i - 2].text == "std";
}

}  // namespace

void check_taint(const Project& p, std::vector<Diagnostic>& out) {
  const std::size_t n = p.funcs.size();
  std::vector<FnInfo> info(n);

  // Identify roots.
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fd = p.funcs[i];
    const SourceFile& f = p.files[fd.file];
    if (f.line_is_hot(fd.line) || f.line_is_hot(fd.body_end_line)) {
      info[i].root = true;
      continue;
    }
    // `// ppf:taint-root` within the two lines above the definition.
    for (const Token& t : f.toks) {
      if (t.line + 2 < fd.line) continue;
      if (t.line >= fd.line) break;
      if (t.kind == TokKind::Comment &&
          t.text.find("ppf:taint-root") != std::string::npos) {
        info[i].root = true;
        break;
      }
    }
  }

  // Approximate call graph: name-matched callees per function body.
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionDef& fd = p.funcs[i];
    const std::vector<Token>& toks = p.files[fd.file].toks;
    std::set<std::string> seen;
    for (std::size_t ti = fd.tok_begin; ti < fd.tok_end; ++ti) {
      if (!reads_as_call(toks, ti)) continue;
      const std::string& name = toks[ti].text;
      if (is_call_keyword(name) || !seen.insert(name).second) continue;
      for (auto [it, end] = p.funcs_by_name.equal_range(name); it != end;
           ++it) {
        if (it->second != i) info[i].callees.push_back(it->second);
      }
    }
  }

  // BFS from the roots; parents give the explanation chain.
  std::vector<std::size_t> parent(n, static_cast<std::size_t>(-1));
  std::vector<char> reach(n, 0);
  std::deque<std::size_t> work;
  for (std::size_t i = 0; i < n; ++i) {
    if (info[i].root) {
      reach[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const std::size_t cur = work.front();
    work.pop_front();
    for (const std::size_t next : info[cur].callees) {
      if (reach[next]) continue;
      reach[next] = 1;
      parent[next] = cur;
      work.push_back(next);
    }
  }

  auto chain_for = [&](std::size_t i) {
    std::string chain = p.funcs[i].qual;
    std::size_t hops = 0;
    for (std::size_t cur = i; parent[cur] != static_cast<std::size_t>(-1);
         cur = parent[cur]) {
      chain = p.funcs[parent[cur]].qual + " -> " + chain;
      if (++hops > 12) {
        chain = "... -> " + chain;
        break;
      }
    }
    return chain;
  };

  // Names declared as std::unordered_* containers anywhere in the
  // project (variables, members, parameters) — iteration targets.
  std::set<std::string> unordered_names;
  for (const SourceFile& f : p.files) {
    const std::vector<Token>& toks = f.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Ident ||
          toks[i].text.rfind("unordered_", 0) != 0)
        continue;
      // Skip the template argument list, then &, *, const.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::Punct &&
          toks[j].text == "<") {
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].kind != TokKind::Punct) continue;
          if (toks[j].text == "<") ++depth;
          else if (toks[j].text == ">" && --depth == 0) {
            ++j;
            break;
          } else if (toks[j].text == ">>" && (depth -= 2) <= 0) {
            ++j;
            break;
          }
        }
      }
      while (j < toks.size() &&
             ((toks[j].kind == TokKind::Punct &&
               (toks[j].text == "&" || toks[j].text == "*")) ||
              (toks[j].kind == TokKind::Ident && toks[j].text == "const")))
        ++j;
      if (j < toks.size() && toks[j].kind == TokKind::Ident)
        unordered_names.insert(toks[j].text);
    }
  }

  // Scan every reachable function body for hazards.
  for (std::size_t i = 0; i < n; ++i) {
    if (!reach[i]) continue;
    const FunctionDef& fd = p.funcs[i];
    const SourceFile& f = p.files[fd.file];
    const std::vector<Token>& toks = f.toks;
    for (std::size_t ti = fd.tok_begin; ti < fd.tok_end; ++ti) {
      const Token& t = toks[ti];
      if (t.kind != TokKind::Ident) continue;

      const bool banned_call = is_banned_call(t.text) &&
                               reads_as_call(toks, ti);
      const bool banned_std_call =
          (t.text == "time" || t.text == "clock") &&
          preceded_by_std(toks, ti) && reads_as_call(toks, ti);
      if ((banned_call || banned_std_call || is_banned_name(t.text)) &&
          !taint_ok_on_line(f, t.line)) {
        out.push_back(
            {"taint-wallclock", f.rel, t.line, t.col,
             "`" + t.text + "` in `" + fd.qual +
                 "`, reachable from the simulation hot path: " +
                 chain_for(i),
             "route through common/random.hpp (seeded) or move the read "
             "off the hot path; steady_clock is the sanctioned "
             "telemetry clock"});
        continue;
      }

      if (t.text == "hash" && preceded_by_std(toks, ti) &&
          ti + 1 < toks.size() && toks[ti + 1].kind == TokKind::Punct &&
          toks[ti + 1].text == "<") {
        // Pointer inside the template argument list?
        int depth = 0;
        for (std::size_t j = ti + 1; j < toks.size(); ++j) {
          if (toks[j].kind != TokKind::Punct) continue;
          if (toks[j].text == "<") ++depth;
          else if (toks[j].text == ">" && --depth == 0) break;
          else if (toks[j].text == "*" && depth == 1 &&
                   !taint_ok_on_line(f, t.line)) {
            out.push_back(
                {"taint-ptr-hash", f.rel, t.line, t.col,
                 "std::hash over a pointer type in `" + fd.qual +
                     "`, reachable from the simulation hot path: " +
                     chain_for(i),
                 "hash a stable ID instead of an address (addresses "
                 "change run to run)"});
            break;
          }
        }
        continue;
      }

      // Iteration over an unordered container: X.begin()/X.cbegin() or
      // a range-for `: X)`.
      if (unordered_names.count(t.text) == 0) continue;
      if (taint_ok_on_line(f, t.line)) continue;
      bool iterates = false;
      if (ti + 2 < toks.size() && toks[ti + 1].kind == TokKind::Punct &&
          (toks[ti + 1].text == "." || toks[ti + 1].text == "->") &&
          toks[ti + 2].kind == TokKind::Ident &&
          (toks[ti + 2].text == "begin" || toks[ti + 2].text == "cbegin" ||
           toks[ti + 2].text == "rbegin")) {
        iterates = true;
      }
      if (!iterates && ti > 0 && toks[ti - 1].kind == TokKind::Punct &&
          toks[ti - 1].text == ":" && ti + 1 < toks.size() &&
          toks[ti + 1].kind == TokKind::Punct && toks[ti + 1].text == ")") {
        // `for (auto& x : container)` — ':' directly before, ')' after.
        iterates = true;
      }
      if (iterates) {
        out.push_back(
            {"taint-unordered-iter", f.rel, t.line, t.col,
             "iteration over std::unordered_* container `" + t.text +
                 "` in `" + fd.qual +
                 "`, reachable from the simulation hot path: " +
                 chain_for(i),
             "fold order-independently, sort before iterating, or use "
             "common/flat_map.hpp"});
      }
    }
  }
}

}  // namespace ppf::analyze
