#include "analyze/report.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <string>

#include "analyze/engine.hpp"

namespace ppf::analyze {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void print_human(std::ostream& os, const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    os << d.file << ":" << d.line << ":" << d.col << ": [" << d.rule << "] "
       << d.message << "\n";
    if (!d.hint.empty()) os << "  fix: " << d.hint << "\n";
  }
}

void print_json(std::ostream& os, const std::vector<Diagnostic>& diags) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << (i == 0 ? "" : ",") << "\n  {\"rule\": \"" << json_escape(d.rule)
       << "\", \"file\": \"" << json_escape(d.file)
       << "\", \"line\": " << d.line << ", \"col\": " << d.col
       << ", \"message\": \"" << json_escape(d.message)
       << "\", \"hint\": \"" << json_escape(d.hint) << "\"}";
  }
  os << (diags.empty() ? "]" : "\n]") << "\n";
}

void print_sarif(std::ostream& os, const std::vector<Diagnostic>& diags) {
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ppf_analyze\",\n"
     << "          \"informationUri\": \"docs/ANALYSIS.md\",\n"
     << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = all_rules();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i].name] = i;
    os << "            {\"id\": \"" << json_escape(rules[i].name)
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(rules[i].help) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    std::string text = d.message;
    if (!d.hint.empty()) text += " (fix: " + d.hint + ")";
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n";
    const auto it = rule_index.find(d.rule);
    if (it != rule_index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(text)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \""
       << json_escape(d.file) << "\"},\n"
       << "                \"region\": {\"startLine\": "
       << (d.line == 0 ? 1 : d.line)
       << ", \"startColumn\": " << (d.col == 0 ? 1 : d.col) << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

void print_legacy_human(std::ostream& os,
                        const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
       << "\n";
  }
}

void print_legacy_json(std::ostream& os,
                       const std::vector<Diagnostic>& diags) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << (i == 0 ? "" : ",") << "\n  {\"rule\": \"" << json_escape(d.rule)
       << "\", \"file\": \"" << json_escape(d.file)
       << "\", \"line\": " << d.line << ", \"message\": \""
       << json_escape(d.message) << "\"}";
  }
  os << (diags.empty() ? "]" : "\n]") << "\n";
}

}  // namespace ppf::analyze
