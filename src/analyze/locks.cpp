#include "analyze/locks.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace ppf::analyze {

namespace {

struct GuardedField {
  std::string name;
  std::string mutex;
  std::string class_name;  ///< enclosing class at the declaration
  std::string dir;         ///< top-level src directory
  std::size_t file = 0;
  std::size_t line = 0;
};

/// Extract `mu_` from "... PPF_GUARDED_BY(mu_) ...".
std::string annotation_mutex(const std::string& comment) {
  const std::size_t at = comment.find("PPF_GUARDED_BY(");
  if (at == std::string::npos) return {};
  const std::size_t open = at + 15;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return {};
  return comment.substr(open, close - open);
}

/// Enclosing class name per token index: a light scope scan (classes
/// and braces only — function bodies just read as blocks here).
std::vector<std::string> class_context(const std::vector<Token>& toks) {
  std::vector<std::string> ctx(toks.size());
  struct Scope {
    bool is_class;
    std::string name;
  };
  std::vector<Scope> stack;
  std::string pending;  // class name waiting for its '{'
  bool pending_active = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::string current;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_class) {
        current = it->name;
        break;
      }
    }
    ctx[i] = current;
    const Token& t = toks[i];
    if (t.kind == TokKind::Ident &&
        (t.text == "class" || t.text == "struct")) {
      // Next ident is the candidate name; a ';' before '{' cancels.
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Ident && toks[j].text != "final") {
          pending = toks[j].text;
          pending_active = true;
          break;
        }
        if (toks[j].kind == TokKind::Punct &&
            (toks[j].text == "{" || toks[j].text == ";"))
          break;
      }
      continue;
    }
    if (t.kind != TokKind::Punct) continue;
    if (t.text == ";") {
      pending_active = false;  // was a forward declaration
    } else if (t.text == "{") {
      stack.push_back({pending_active, pending_active ? pending : ""});
      pending_active = false;
    } else if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
    }
  }
  return ctx;
}

/// Marker comment on `line` itself or the line above (so long
/// statements can carry the annotation NOLINTNEXTLINE-style).
bool comment_marker_on_line(const SourceFile& f, std::size_t line,
                            const char* marker) {
  for (const Token& t : f.toks) {
    if (t.line > line) break;
    if (t.kind == TokKind::Comment &&
        (t.line == line || t.line + 1 == line) &&
        t.text.find(marker) != std::string::npos)
      return true;
  }
  return false;
}

/// Does `fd`'s body acquire `mutex` before token index `use_ti`?
bool locked_before(const std::vector<Token>& toks, const FunctionDef& fd,
                   const std::string& mutex, std::size_t use_ti) {
  for (std::size_t i = fd.tok_begin; i < use_ti; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;
    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock") {
      // The guarded mutex must appear in the next few tokens (the
      // constructor argument list, possibly behind a template arg).
      for (std::size_t j = i + 1; j < use_ti && j < i + 16; ++j) {
        if (toks[j].kind == TokKind::Ident && toks[j].text == mutex)
          return true;
        if (toks[j].kind == TokKind::Punct && toks[j].text == ";") break;
      }
      continue;
    }
    if (t.text == mutex && i + 2 < use_ti &&
        toks[i + 1].kind == TokKind::Punct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == TokKind::Ident &&
        (toks[i + 2].text == "lock" || toks[i + 2].text == "try_lock")) {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_locks(const Project& p, std::vector<Diagnostic>& out) {
  // Collect annotations.
  std::vector<GuardedField> fields;
  for (std::size_t fi = 0; fi < p.files.size(); ++fi) {
    const SourceFile& f = p.files[fi];
    if (f.dir == "analyze") continue;  // this pass's own docs mention
                                       // the annotation as an example
    std::vector<std::string> ctx;  // built lazily (most files: never)
    for (std::size_t ti = 0; ti < f.toks.size(); ++ti) {
      const Token& t = f.toks[ti];
      if (t.kind != TokKind::Comment ||
          t.text.find("PPF_GUARDED_BY(") == std::string::npos)
        continue;
      const std::string mutex = annotation_mutex(t.text);
      if (mutex.empty()) continue;
      if (ctx.empty()) ctx = class_context(f.toks);

      // The annotated declarator: on the comment's line, the identifier
      // before the first ';' '=' or '{'. (Trailing-comment style:
      // `std::deque<Task> queue_;  // PPF_GUARDED_BY(mu_)`.)
      std::string field;
      std::size_t last_ident = static_cast<std::size_t>(-1);
      for (std::size_t j = 0; j < f.toks.size(); ++j) {
        const Token& dt = f.toks[j];
        if (dt.line != t.line || dt.kind == TokKind::Comment) {
          if (dt.line > t.line) break;
          continue;
        }
        if (dt.kind == TokKind::Ident) last_ident = j;
        if (dt.kind == TokKind::Punct &&
            (dt.text == ";" || dt.text == "=" || dt.text == "{")) {
          if (last_ident != static_cast<std::size_t>(-1))
            field = f.toks[last_ident].text;
          break;
        }
      }
      if (field.empty()) {
        out.push_back({"lock-unknown-mutex", f.rel, t.line, t.col,
                       "PPF_GUARDED_BY(" + mutex +
                           ") is not attached to a field declaration",
                       "place the annotation as a trailing comment on "
                       "the field's declaration line"});
        continue;
      }

      // The named mutex must exist in this file.
      bool mutex_declared = false;
      for (const Token& mt : f.toks) {
        if (mt.kind == TokKind::Ident && mt.text == mutex) {
          mutex_declared = true;
          break;
        }
      }
      if (!mutex_declared) {
        out.push_back({"lock-unknown-mutex", f.rel, t.line, t.col,
                       "PPF_GUARDED_BY names `" + mutex +
                           "`, which this file never declares",
                       "name the actual std::mutex member"});
        continue;
      }

      GuardedField gf;
      gf.name = field;
      gf.mutex = mutex;
      gf.file = fi;
      gf.line = t.line;
      gf.dir = f.dir;
      gf.class_name = ctx[std::min(ti, ctx.size() - 1)];
      fields.push_back(std::move(gf));
    }
  }

  // Check uses.
  std::set<std::string> emitted;  // dedupe key: file:line:field
  for (const GuardedField& gf : fields) {
    for (std::size_t fi = 0; fi < p.files.size(); ++fi) {
      const SourceFile& f = p.files[fi];
      if (f.dir != gf.dir) continue;
      for (std::size_t ti = 0; ti < f.toks.size(); ++ti) {
        const Token& t = f.toks[ti];
        if (t.kind != TokKind::Ident || t.text != gf.name) continue;
        if (fi == gf.file && t.line == gf.line) continue;  // the decl
        const FunctionDef* fd = p.enclosing_function(fi, ti);
        if (fd == nullptr) continue;  // declaration / initializer
        if (!gf.class_name.empty() && fd->class_name != gf.class_name)
          continue;  // another class's identically-named member
        if (fd->ctor_dtor) continue;
        if (locked_before(f.toks, *fd, gf.mutex, ti)) continue;
        if (comment_marker_on_line(f, t.line, "ppf:lock-ok") ||
            comment_marker_on_line(f, fd->line, "ppf:lock-ok"))
          continue;
        const std::string key =
            f.rel + ":" + std::to_string(t.line) + ":" + gf.name;
        if (!emitted.insert(key).second) continue;
        out.push_back(
            {"lock-unguarded-field", f.rel, t.line, t.col,
             "`" + gf.name + "` (PPF_GUARDED_BY(" + gf.mutex +
                 ") at " + p.files[gf.file].rel + ":" +
                 std::to_string(gf.line) + ") is touched in `" + fd->qual +
                 "` without acquiring `" + gf.mutex + "`",
             "take std::lock_guard<std::mutex> lk(" + gf.mutex +
                 ") first, or annotate the line `// ppf:lock-ok(<why>)` "
                 "if the access is provably race-free"});
      }
    }
  }
}

}  // namespace ppf::analyze
