#include "analyze/token.hpp"

namespace ppf::analyze {

namespace {

/// Cursor over raw text with 1-based line/col accounting. CRLF and lone
/// CR both count as one newline; col resets after either.
struct Cursor {
  const std::string& s;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t col = 1;

  explicit Cursor(const std::string& text) : s(text) {}

  [[nodiscard]] bool eof() const { return pos >= s.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < s.size() ? s[pos + ahead] : '\0';
  }

  char advance() {
    const char c = s[pos++];
    if (c == '\r') {
      if (pos < s.size() && s[pos] == '\n') ++pos;
      ++line;
      col = 1;
      return '\n';
    }
    if (c == '\n') {
      ++line;
      col = 1;
      return '\n';
    }
    ++col;
    return c;
  }

  /// True when `pos` sits at a newline (LF, CRLF, or lone CR).
  [[nodiscard]] bool at_newline() const {
    return peek() == '\n' || peek() == '\r';
  }
};

bool is_digit(char c) { return c >= '0' && c <= '9'; }

bool is_raw_prefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

bool is_str_prefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

/// Consume a quoted literal body (after the opening quote), honoring
/// backslash escapes; returns the contents without the quotes.
std::string lex_quoted(Cursor& c, char quote) {
  std::string out;
  while (!c.eof()) {
    if (c.peek() == '\\' && c.pos + 1 < c.s.size()) {
      out += c.advance();
      out += c.advance();
      continue;
    }
    if (c.peek() == quote) {
      c.advance();
      break;
    }
    if (c.at_newline()) break;  // unterminated; recover at EOL
    out += c.advance();
  }
  return out;
}

/// Consume a raw-string body after `R"`: delim( ... )delim".
std::string lex_raw_string(Cursor& c) {
  std::string delim;
  while (!c.eof() && c.peek() != '(' && !c.at_newline()) delim += c.advance();
  if (c.peek() == '(') c.advance();
  const std::string close = ")" + delim + "\"";
  std::string out;
  while (!c.eof()) {
    if (c.s.compare(c.pos, close.size(), close) == 0) {
      for (std::size_t i = 0; i < close.size(); ++i) c.advance();
      break;
    }
    out += c.advance();
  }
  return out;
}

/// Fold one preprocessor directive (from the '#') into a single string,
/// joining backslash-newline continuations; leaves the cursor after the
/// final newline's start (the newline itself unconsumed is fine).
std::string lex_directive(Cursor& c) {
  std::string out;
  while (!c.eof()) {
    if (c.peek() == '\\') {
      // Backslash-newline (or backslash-CRLF): continuation.
      std::size_t ahead = 1;
      if (c.peek(1) == '\r' && c.peek(2) == '\n') ahead = 3;
      else if (c.peek(1) == '\n' || c.peek(1) == '\r') ahead = 2;
      if (ahead > 1) {
        c.advance();  // backslash
        c.advance();  // newline (advance folds CRLF)
        out += ' ';
        continue;
      }
    }
    if (c.at_newline()) break;
    // A // comment ends the directive's interesting text but we keep
    // scanning to EOL so the comment does not leak into the stream as
    // code. Block comments inside directives are swallowed too.
    out += c.advance();
  }
  return out;
}

/// After `#if 0`: skip physical lines until the matching #endif, #else,
/// or #elif at nesting depth 0. Returns with the cursor at the start of
/// the line after that terminator.
void skip_disabled_region(Cursor& c) {
  int depth = 0;
  while (!c.eof()) {
    // Examine the upcoming line without tokenizing it.
    std::size_t i = c.pos;
    while (i < c.s.size() && (c.s[i] == ' ' || c.s[i] == '\t')) ++i;
    bool handled = false;
    if (i < c.s.size() && c.s[i] == '#') {
      ++i;
      while (i < c.s.size() && (c.s[i] == ' ' || c.s[i] == '\t')) ++i;
      std::string word;
      while (i < c.s.size() && is_ident_char(c.s[i])) word += c.s[i++];
      if (word == "if" || word == "ifdef" || word == "ifndef") {
        ++depth;
      } else if (word == "endif") {
        if (depth == 0) handled = true;
        else --depth;
      } else if ((word == "else" || word == "elif") && depth == 0) {
        handled = true;
      }
    }
    // Consume the whole physical line (honoring continuations: a
    // continued directive line keeps the region's line accounting).
    while (!c.eof() && !c.at_newline()) {
      if (c.peek() == '\\' &&
          (c.peek(1) == '\n' || c.peek(1) == '\r')) {
        c.advance();
        c.advance();
        continue;
      }
      c.advance();
    }
    if (!c.eof()) c.advance();  // the newline
    if (handled) return;
  }
}

bool directive_is_if0(const std::string& d) {
  // d starts at '#'. Accept "# if 0" with arbitrary internal blanks.
  std::size_t i = 1;
  while (i < d.size() && (d[i] == ' ' || d[i] == '\t')) ++i;
  if (d.compare(i, 2, "if") != 0) return false;
  i += 2;
  if (i < d.size() && is_ident_char(d[i])) return false;  // ifdef/ifndef
  while (i < d.size() && (d[i] == ' ' || d[i] == '\t')) ++i;
  if (i >= d.size() || d[i] != '0') return false;
  ++i;
  return i >= d.size() || !is_ident_char(d[i]);
}

const char* const kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* const kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                               ">=", "==", "!=", "&&", "||", "+=", "-=",
                               "*=", "/=", "%=", "&=", "|=", "^=", "##",
                               ".*"};

}  // namespace

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  Cursor c(text);
  bool line_start = true;  // only whitespace seen on this physical line

  while (!c.eof()) {
    const std::size_t line = c.line;
    const std::size_t col = c.col;
    const char ch = c.peek();

    if (ch == '\n' || ch == '\r') {
      c.advance();
      line_start = true;
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\f' || ch == '\v') {
      c.advance();
      continue;
    }

    // Preprocessor directive: '#' first on the line.
    if (ch == '#' && line_start) {
      const std::string d = lex_directive(c);
      if (directive_is_if0(d)) {
        if (!c.eof()) c.advance();  // finish the #if 0 line
        skip_disabled_region(c);
        line_start = true;
        continue;
      }
      out.push_back({TokKind::Directive, d, line, col});
      line_start = false;
      continue;
    }
    line_start = false;

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      std::string t;
      while (!c.eof() && !c.at_newline()) t += c.advance();
      out.push_back({TokKind::Comment, t, line, col});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      std::string t;
      t += c.advance();
      t += c.advance();
      // C++ block comments do not nest: the first */ closes, even after
      // an inner /* (the tokenizer-edge-case fixtures pin this).
      while (!c.eof()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          t += c.advance();
          t += c.advance();
          break;
        }
        t += c.advance();
      }
      out.push_back({TokKind::Comment, t, line, col});
      continue;
    }

    // Identifier (possibly a string-literal prefix).
    if (is_ident_char(ch) && !is_digit(ch)) {
      std::string id;
      while (!c.eof() && is_ident_char(c.peek())) id += c.advance();
      if (c.peek() == '"' && is_raw_prefix(id)) {
        c.advance();  // opening quote
        out.push_back({TokKind::String, lex_raw_string(c), line, col});
        continue;
      }
      if (c.peek() == '"' && is_str_prefix(id)) {
        c.advance();
        out.push_back({TokKind::String, lex_quoted(c, '"'), line, col});
        continue;
      }
      if (c.peek() == '\'' && is_str_prefix(id)) {
        c.advance();
        out.push_back({TokKind::CharLit, lex_quoted(c, '\''), line, col});
        continue;
      }
      out.push_back({TokKind::Ident, id, line, col});
      continue;
    }

    // Number (digit, or .digit). Consumes 0x1'234, 1.5e-3, suffixes.
    if (is_digit(ch) || (ch == '.' && is_digit(c.peek(1)))) {
      std::string n;
      n += c.advance();
      while (!c.eof()) {
        const char p = c.peek();
        if (is_ident_char(p) || p == '\'' || p == '.') {
          n += c.advance();
          continue;
        }
        if ((p == '+' || p == '-') && !n.empty()) {
          const char prev = n.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            n += c.advance();
            continue;
          }
        }
        break;
      }
      out.push_back({TokKind::Number, n, line, col});
      continue;
    }

    // Plain string / char literals.
    if (ch == '"') {
      c.advance();
      out.push_back({TokKind::String, lex_quoted(c, '"'), line, col});
      continue;
    }
    if (ch == '\'') {
      c.advance();
      out.push_back({TokKind::CharLit, lex_quoted(c, '\''), line, col});
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (c.s.compare(c.pos, 3, p) == 0) {
        c.advance();
        c.advance();
        c.advance();
        out.push_back({TokKind::Punct, p, line, col});
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (c.s.compare(c.pos, 2, p) == 0) {
        c.advance();
        c.advance();
        out.push_back({TokKind::Punct, p, line, col});
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({TokKind::Punct, std::string(1, c.advance()), line, col});
  }
  return out;
}

}  // namespace ppf::analyze
