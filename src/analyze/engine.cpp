#include "analyze/engine.hpp"

#include <algorithm>

#include "analyze/catalogs.hpp"
#include "analyze/conventions.hpp"
#include "analyze/layers.hpp"
#include "analyze/locks.hpp"
#include "analyze/source_model.hpp"
#include "analyze/taint.hpp"

namespace ppf::analyze {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      // conventions (ppf_lint heritage)
      {"no-bare-assert",
       "use PPF_ASSERT/PPF_CHECK (common/assert.hpp), not assert()/<cassert>"},
      {"no-wallclock-rand",
       "no rand/srand/std::time/random_device/system_clock in src/"},
      {"obs-check-parity",
       "headers declaring register_obs must also declare register_checks"},
      {"obs-event-bookkeeping",
       "classifier-shaped PPF_OBS_EVENT probes need the matching record_* "
       "call within 8 lines"},
      {"hot-loop-no-virtual",
       "no `virtual` or abstract-interface calls inside // ppf:hot regions"},
      {"kind-switch-exhaustive",
       "kind-to-string switches must assert/throw on the fall-through path "
       "so a new enumerator cannot stringify silently"},
      // unified catalogs (ppf_lint heritage)
      {"config-key-docs",
       "every override_docs() key must appear in docs/*.md or README.md"},
      {"invariant-id-docs",
       "invariant IDs at require()/fail()/CheckFailure sites must appear in "
       "docs/CHECKING.md"},
      {"diff-oracle-docs",
       "diff.* oracle IDs in src/diff must appear in docs/DIFF.md"},
      {"serve-verb-docs",
       "serve protocol verbs and error codes must appear in docs/SERVE.md"},
      {"span-name-docs",
       "every span name in obs::span_name_docs() must appear in "
       "docs/OBSERVABILITY.md"},
      // include-layer DAG
      {"layer-undeclared",
       "every src/ top directory on an include edge must be declared in "
       "docs/LAYERS.md"},
      {"layer-forbidden-edge",
       "includes may only cross layers docs/LAYERS.md allows"},
      {"layer-cycle", "the file-level include graph must be acyclic"},
      // determinism taint
      {"taint-wallclock",
       "no wall-clock/rand source reachable from the simulation hot path"},
      {"taint-unordered-iter",
       "no std::unordered_* iteration reachable from the simulation hot "
       "path (iteration order is address-dependent)"},
      {"taint-ptr-hash",
       "no std::hash over pointer types reachable from the simulation hot "
       "path"},
      // lock discipline
      {"lock-unguarded-field",
       "fields annotated // PPF_GUARDED_BY(m) are only touched with m held"},
      {"lock-unknown-mutex",
       "PPF_GUARDED_BY must name a mutex the file declares"},
  };
  return rules;
}

const std::set<std::string>& legacy_lint_rules() {
  static const std::set<std::string> rules = {
      "no-bare-assert",    "no-wallclock-rand",     "obs-check-parity",
      "config-key-docs",   "obs-event-bookkeeping", "invariant-id-docs",
      "diff-oracle-docs",  "serve-verb-docs",       "hot-loop-no-virtual",
      "span-name-docs",
  };
  return rules;
}

std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root,
                                     const std::set<std::string>& only) {
  const Project p = Project::load(root);
  const LayerSpec spec =
      parse_layer_spec(Project::read_text(root / "docs" / "LAYERS.md"));

  std::vector<Diagnostic> out;
  check_conventions(p, out);
  check_catalogs(p, out);
  check_layers(p, spec, out);
  check_taint(p, out);
  check_locks(p, out);

  if (!only.empty()) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Diagnostic& d) {
                               return only.count(d.rule) == 0;
                             }),
              out.end());
  }
  sort_diagnostics(out);
  return out;
}

}  // namespace ppf::analyze
