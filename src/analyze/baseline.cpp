#include "analyze/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace ppf::analyze {

bool Baseline::covers(const Diagnostic& d) const {
  const BaselineEntry key{d.rule, d.file, d.message};
  return std::binary_search(entries.begin(), entries.end(), key);
}

Baseline load_baseline(const std::filesystem::path& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;
  b.loaded = true;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t p1 = line.find('|');
    if (p1 == std::string::npos) continue;
    const std::size_t p2 = line.find('|', p1 + 1);
    if (p2 == std::string::npos) continue;
    b.entries.push_back({line.substr(0, p1), line.substr(p1 + 1, p2 - p1 - 1),
                         line.substr(p2 + 1)});
  }
  std::sort(b.entries.begin(), b.entries.end());
  b.entries.erase(std::unique(b.entries.begin(), b.entries.end()),
                  b.entries.end());
  return b;
}

std::string render_baseline(const std::vector<Diagnostic>& diags) {
  std::set<BaselineEntry> entries;
  for (const Diagnostic& d : diags) {
    entries.insert({d.rule, d.file, d.message});
  }
  std::ostringstream os;
  os << "# ppf_analyze baseline — grandfathered findings.\n"
     << "# Format: rule|file|message (no line numbers: entries survive\n"
     << "# unrelated edits). Regenerate with `ppf_analyze --fix-baseline`;\n"
     << "# shrink it whenever you fix a finding for real.\n";
  for (const BaselineEntry& e : entries) {
    os << e.rule << '|' << e.file << '|' << e.message << '\n';
  }
  return os.str();
}

std::vector<BaselineEntry> apply_baseline(
    const Baseline& b, const std::vector<Diagnostic>& diags,
    std::vector<Diagnostic>& fresh, std::vector<Diagnostic>& suppressed) {
  std::set<BaselineEntry> used;
  for (const Diagnostic& d : diags) {
    if (b.covers(d)) {
      suppressed.push_back(d);
      used.insert({d.rule, d.file, d.message});
    } else {
      fresh.push_back(d);
    }
  }
  std::vector<BaselineEntry> stale;
  for (const BaselineEntry& e : b.entries) {
    if (used.count(e) == 0) stale.push_back(e);
  }
  return stale;
}

}  // namespace ppf::analyze
