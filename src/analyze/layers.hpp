// ppf::analyze — include-layer DAG pass.
//
// The repo's layering is declared once, machine-readably, in
// docs/LAYERS.md (a ```ppf-layers fenced block of `layer -> allowed
// deps` lines). This pass extracts the project include graph from every
// `#include "..."` directive in src/ and enforces:
//
//   layer-undeclared      a src/ top directory missing from the spec
//   layer-forbidden-edge  an include crossing layers the spec does not
//                         allow (e.g. src/core including src/serve)
//   layer-cycle           a cycle in the file-level include graph
//                         (reported once per cycle, with the full path)
//
// Rule IDs are catalogued in docs/ANALYSIS.md.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"

namespace ppf::analyze {

struct LayerSpec {
  /// layer -> set of other layers it may include from.
  std::map<std::string, std::vector<std::string>> allowed;
  bool loaded = false;

  [[nodiscard]] bool declares(const std::string& layer) const {
    return allowed.count(layer) != 0;
  }
  [[nodiscard]] bool allows(const std::string& from,
                            const std::string& to) const;
};

/// Parse the ```ppf-layers block out of docs/LAYERS.md text. Lines:
/// `name ->` (no deps) or `name -> dep dep ...`; '#' comments allowed.
LayerSpec parse_layer_spec(const std::string& layers_md);

/// Run the pass. A missing/empty spec disables layer checking but cycle
/// detection still runs (an include cycle is wrong under any spec).
void check_layers(const Project& p, const LayerSpec& spec,
                  std::vector<Diagnostic>& out);

}  // namespace ppf::analyze
