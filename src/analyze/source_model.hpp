// ppf::analyze — project source model.
//
// Loads the tree once (src/**/*.{hpp,cpp,h,cc} plus the docs corpus),
// tokenizes every file, and derives the shared lexical structures the
// passes consume:
//
//   * per-file token streams (analyze/token.hpp),
//   * `// ppf:hot` ... `// ppf:cold` region line ranges,
//   * an approximate function index: every function/method *definition*
//     with its qualified name, class context, and body token span —
//     built by a forward heuristic parse (scope stack over namespaces
//     and classes; bodies are attributed whole, so lambdas and local
//     structs belong to their enclosing function).
//
// The function index is approximate by design (no template
// instantiation, no overload resolution — callees resolve by name). The
// passes that use it (determinism taint, lock discipline) are
// conventions checkers, not compilers: an over-approximation that names
// real code is exactly what they need.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analyze/token.hpp"

namespace ppf::analyze {

struct SourceFile {
  std::string rel;   ///< repo-relative, '/' separators ("src/mem/cache.hpp")
  std::string dir;   ///< top directory under src/ ("mem"); empty otherwise
  bool header = false;
  std::vector<Token> toks;
  /// [first,last] physical-line ranges between // ppf:hot and // ppf:cold
  /// markers (to EOF when unclosed).
  std::vector<std::pair<std::size_t, std::size_t>> hot_regions;

  [[nodiscard]] bool line_is_hot(std::size_t line) const {
    for (const auto& [lo, hi] : hot_regions) {
      if (line >= lo && line <= hi) return true;
    }
    return false;
  }
};

struct FunctionDef {
  std::string name;        ///< unqualified ("cycle", "~Cache")
  std::string qual;        ///< qualified tail ("BatchedCore::cycle")
  std::string class_name;  ///< enclosing/explicit class, if any
  std::size_t file = 0;    ///< index into Project::files
  std::size_t tok_begin = 0;  ///< body span [tok_begin, tok_end)
  std::size_t tok_end = 0;    ///< (excludes the braces themselves)
  std::size_t line = 0;       ///< definition line (the name token's)
  std::size_t body_end_line = 0;
  bool ctor_dtor = false;
};

class Project {
 public:
  /// Load and tokenize everything under `root`/src. Also reads the docs
  /// corpus (README.md + docs/*.md) for the catalog pass.
  static Project load(const std::filesystem::path& root);

  std::filesystem::path root;
  std::vector<SourceFile> files;
  std::vector<FunctionDef> funcs;
  /// Unqualified-name -> indices into funcs (call-graph resolution).
  std::multimap<std::string, std::size_t> funcs_by_name;
  /// README.md + docs/*.md concatenated, for word-boundary doc lookups.
  std::string docs_corpus;

  /// `word` present in `text` with non-identifier chars on both sides.
  static bool contains_word(const std::string& text, const std::string& word);

  /// Read a file as a string ("" when missing).
  static std::string read_text(const std::filesystem::path& p);

  /// The function whose body span contains token index `ti` of file
  /// `fi`, or nullptr.
  [[nodiscard]] const FunctionDef* enclosing_function(std::size_t fi,
                                                      std::size_t ti) const;
};

/// Build the function index for one file (exposed for tests).
std::vector<FunctionDef> index_functions(const SourceFile& f,
                                         std::size_t file_index);

}  // namespace ppf::analyze
