#include "analyze/conventions.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace ppf::analyze {

namespace {

bool next_is(const std::vector<Token>& toks, std::size_t i,
             const char* punct) {
  std::size_t j = i + 1;
  while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
  return j < toks.size() && toks[j].kind == TokKind::Punct &&
         toks[j].text == punct;
}

const Token* prev_code(const std::vector<Token>& toks, std::size_t i) {
  for (std::size_t k = i; k-- > 0;) {
    if (toks[k].kind != TokKind::Comment) return &toks[k];
  }
  return nullptr;
}

// --- no-bare-assert --------------------------------------------------------

void check_bare_assert(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (f.rel == "src/common/assert.hpp") return;  // the ladder itself
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const Token& t = f.toks[i];
    if (t.kind == TokKind::Directive &&
        t.text.find("<cassert>") != std::string::npos) {
      out.push_back({"no-bare-assert", f.rel, t.line, t.col,
                     "<cassert> included; use common/assert.hpp",
                     "include common/assert.hpp instead"});
    }
    if (t.kind != TokKind::Ident || t.text != "assert" ||
        !next_is(f.toks, i, "("))
      continue;
    // `foo.assert(`, `x->assert(`, `ns::assert(` are someone else's
    // assert — the regex original excluded those too.
    const Token* prev = prev_code(f.toks, i);
    if (prev != nullptr && prev->kind == TokKind::Punct &&
        (prev->text == "." || prev->text == "->" || prev->text == "::"))
      continue;
    out.push_back({"no-bare-assert", f.rel, t.line, t.col,
                   "bare assert(); use PPF_ASSERT/PPF_CHECK",
                   "PPF_ASSERT keeps the message and the release-mode "
                   "expression type-check"});
  }
}

// --- no-wallclock-rand -----------------------------------------------------

void check_wallclock_rand(const SourceFile& f, std::vector<Diagnostic>& out) {
  constexpr const char* kMsg =
      "non-deterministic source; use common/random.hpp "
      "(steady_clock is fine for telemetry)";
  constexpr const char* kHint =
      "seeded randomness lives in common/random.hpp; wall-clock reads "
      "belong off the simulated path";
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const Token& t = f.toks[i];
    if (t.kind != TokKind::Ident) continue;
    if (t.text == "random_device" || t.text == "system_clock") {
      out.push_back({"no-wallclock-rand", f.rel, t.line, t.col, kMsg, kHint});
      continue;
    }
    if (!next_is(f.toks, i, "(")) continue;
    if (t.text == "rand" || t.text == "srand") {
      // `obj.rand(` / `ns::rand(` is not libc rand — except std::rand.
      const Token* prev = prev_code(f.toks, i);
      if (prev != nullptr && prev->kind == TokKind::Punct &&
          (prev->text == "." || prev->text == "->"))
        continue;
      if (prev != nullptr && prev->kind == TokKind::Punct &&
          prev->text == "::") {
        const Token* ns = i >= 2 ? prev_code(f.toks, i - 1) : nullptr;
        if (ns == nullptr || ns->kind != TokKind::Ident ||
            ns->text != "std")
          continue;
      }
      out.push_back({"no-wallclock-rand", f.rel, t.line, t.col, kMsg, kHint});
    } else if (t.text == "time") {
      const Token* prev = prev_code(f.toks, i);
      if (prev == nullptr || prev->kind != TokKind::Punct ||
          prev->text != "::")
        continue;
      const Token* ns = i >= 2 ? prev_code(f.toks, i - 1) : nullptr;
      if (ns != nullptr && ns->kind == TokKind::Ident && ns->text == "std") {
        out.push_back(
            {"no-wallclock-rand", f.rel, t.line, t.col, kMsg, kHint});
      }
    }
  }
}

// --- obs-check-parity ------------------------------------------------------

void check_obs_parity(const SourceFile& f, std::vector<Diagnostic>& out) {
  if (!f.header) return;
  std::size_t obs_line = 0;
  std::size_t obs_col = 0;
  bool has_checks = false;
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const Token& t = f.toks[i];
    if (t.kind != TokKind::Ident || !next_is(f.toks, i, "(")) continue;
    if (obs_line == 0 && t.text == "register_obs") {
      obs_line = t.line;
      obs_col = t.col;
    }
    if (t.text == "register_checks") has_checks = true;
  }
  if (obs_line != 0 && !has_checks) {
    out.push_back({"obs-check-parity", f.rel, obs_line, obs_col,
                   "register_obs declared without register_checks",
                   "observable components are checkable components: "
                   "declare register_checks alongside"});
  }
}

// --- obs-event-bookkeeping -------------------------------------------------

void check_event_bookkeeping(const SourceFile& f,
                             std::vector<Diagnostic>& out) {
  if (f.rel.rfind("src/obs/", 0) == 0) return;  // the macro's own home
  static const std::map<std::string, std::string> pair = {
      {"Issued", "record_issued"},
      {"Filtered", "record_filtered"},
      {"Squashed", "record_squashed"},
      {"EvictReferenced", "record_outcome"},
      {"EvictDead", "record_outcome"},
  };
  constexpr std::size_t kWindow = 8;
  const std::vector<Token>& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i].text != "PPF_OBS_EVENT" ||
        !next_is(toks, i, "("))
      continue;
    // Walk the balanced argument list for EventKind::<kind>.
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::Punct) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")" && --depth == 0) break;
        continue;
      }
      if (toks[j].kind != TokKind::Ident) continue;
      const Token* prev = prev_code(toks, j);
      const Token* ns = j >= 2 ? prev_code(toks, j - 1) : nullptr;
      if (prev == nullptr || prev->kind != TokKind::Punct ||
          prev->text != "::" || ns == nullptr ||
          ns->kind != TokKind::Ident || ns->text != "EventKind")
        continue;
      const auto it = pair.find(toks[j].text);
      if (it == pair.end()) continue;
      const std::string& record = it->second;
      const std::size_t lo =
          toks[i].line >= kWindow ? toks[i].line - kWindow : 1;
      const std::size_t hi = toks[i].line + kWindow;
      bool found = false;
      for (std::size_t k = 0; k < toks.size() && !found; ++k) {
        found = toks[k].kind == TokKind::Ident && toks[k].text == record &&
                toks[k].line >= lo && toks[k].line <= hi &&
                next_is(toks, k, "(");
      }
      if (!found) {
        out.push_back({"obs-event-bookkeeping", f.rel, toks[i].line,
                       toks[i].col,
                       "EventKind::" + toks[j].text +
                           " probe without nearby classifier " + record +
                           "() call",
                       "keep the obs stream and the classifier counters "
                       "in lockstep: call " + record +
                           "() within 8 lines of the probe"});
      }
    }
  }
}

// --- kind-switch-exhaustive ------------------------------------------------

bool is_switch_guard(const std::string& s) {
  return s.rfind("PPF_ASSERT", 0) == 0 || s.rfind("PPF_CHECK", 0) == 0 ||
         s == "throw";
}

/// A switch that maps a kind to string literals (two or more
/// `return "..."` arms) must not be able to fall off the end silently:
/// either an arm (typically `default:`) asserts/throws, or an
/// assert/throw follows the closing brace before the enclosing function
/// ends. Without that, adding an enumerator compiles clean and the new
/// kind quietly stringifies as whatever the fallback return says.
void check_kind_switch(const SourceFile& f, std::vector<Diagnostic>& out) {
  const std::vector<Token>& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i].text != "switch" ||
        !next_is(toks, i, "("))
      continue;
    // Balanced condition parens, then the `{` that opens the body.
    std::size_t j = i + 1;
    int pd = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::Punct) continue;
      if (toks[j].text == "(") ++pd;
      else if (toks[j].text == ")" && --pd == 0) {
        ++j;
        break;
      }
    }
    while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
    if (j >= toks.size() || toks[j].kind != TokKind::Punct ||
        toks[j].text != "{")
      continue;
    int bd = 0;
    std::size_t body_end = toks.size();
    std::size_t string_returns = 0;
    bool guarded = false;
    for (std::size_t k = j; k < toks.size(); ++k) {
      if (toks[k].kind == TokKind::Punct) {
        if (toks[k].text == "{") ++bd;
        else if (toks[k].text == "}" && --bd == 0) {
          body_end = k;
          break;
        }
        continue;
      }
      if (toks[k].kind != TokKind::Ident) continue;
      if (toks[k].text == "return" && k + 1 < toks.size() &&
          toks[k + 1].kind == TokKind::String)
        ++string_returns;
      if (is_switch_guard(toks[k].text)) guarded = true;
    }
    if (string_returns < 2) continue;  // not a kind-to-string mapping
    // The fall-through path: up to the enclosing function's closing
    // brace (a short, fixed window keeps the scan local).
    constexpr std::size_t kWindow = 16;
    for (std::size_t k = body_end + 1;
         !guarded && k < toks.size() && k < body_end + 1 + kWindow; ++k) {
      if (toks[k].kind == TokKind::Punct && toks[k].text == "}") break;
      if (toks[k].kind == TokKind::Ident && is_switch_guard(toks[k].text))
        guarded = true;
    }
    if (!guarded) {
      out.push_back({"kind-switch-exhaustive", f.rel, toks[i].line,
                     toks[i].col,
                     "kind-to-string switch can fall off the end silently "
                     "when an enumerator is added",
                     "cover every enumerator, then PPF_ASSERT_MSG(false, "
                     "...) (or a default: that asserts) before the "
                     "fallback return"});
    }
  }
}

// --- hot-loop-no-virtual ---------------------------------------------------

bool is_iface_type(const std::string& s) {
  return s == "DataMemory" || s == "InstMemory" || s == "TraceSource" ||
         s == "Prefetcher" || s == "PollutionFilter" || s == "CoreEngine";
}

void check_hot_loop_virtual(const SourceFile& f,
                            std::vector<Diagnostic>& out) {
  if (f.hot_regions.empty()) return;
  const std::vector<Token>& toks = f.toks;

  // Pass 1: handles — variables declared `<Iface> [&*] name` anywhere in
  // the file (members, parameters, locals).
  std::set<std::string> handles;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || !is_iface_type(toks[i].text))
      continue;
    std::size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
    if (j >= toks.size() || toks[j].kind != TokKind::Punct ||
        (toks[j].text != "&" && toks[j].text != "*"))
      continue;
    ++j;
    while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
    if (j < toks.size() && toks[j].kind == TokKind::Ident)
      handles.insert(toks[j].text);
  }

  // Pass 2: inside hot regions, flag `virtual` and `handle.` / `handle->`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident || !f.line_is_hot(t.line)) continue;
    if (t.text == "virtual") {
      out.push_back({"hot-loop-no-virtual", f.rel, t.line, t.col,
                     "`virtual` declared inside a ppf:hot region",
                     "hot-path calls must devirtualize; move the "
                     "declaration out of the region or mark the slow "
                     "path // ppf:cold"});
      continue;
    }
    if (handles.count(t.text) == 0) continue;
    std::size_t j = i + 1;
    while (j < toks.size() && toks[j].kind == TokKind::Comment) ++j;
    if (j < toks.size() && toks[j].kind == TokKind::Punct &&
        (toks[j].text == "." || toks[j].text == "->")) {
      out.push_back(
          {"hot-loop-no-virtual", f.rel, t.line, t.col,
           "call through abstract interface handle '" + t.text +
               "' inside a ppf:hot region (devirtualize or mark the "
               "slow path // ppf:cold)",
           "the batched stage kernels' speedup rests on concrete "
           "calls in the cycle loop"});
    }
  }
}

}  // namespace

void check_conventions(const Project& p, std::vector<Diagnostic>& out) {
  for (const SourceFile& f : p.files) {
    check_bare_assert(f, out);
    check_wallclock_rand(f, out);
    check_obs_parity(f, out);
    check_event_bookkeeping(f, out);
    check_kind_switch(f, out);
    check_hot_loop_virtual(f, out);
  }
}

}  // namespace ppf::analyze
