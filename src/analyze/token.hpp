// ppf::analyze — token model for the project-wide static analysis pass.
//
// The analyzer is deliberately NOT a libclang tool: like ppf_lint before
// it, it must build and run anywhere the simulator builds, with zero
// extra dependencies (std::filesystem + iostreams only). What it gains
// over ppf_lint's line regexes is a real lexical model: every rule sees
// a stream of identifiers, literals, punctuation, comments, and folded
// preprocessor directives with exact file:line:col positions — so a
// string containing "rand()" is data, a wrapped catalogue entry is one
// entry, and a `#if 0` region is invisible, all without a rule having
// to re-derive any of that per line.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppf::analyze {

enum class TokKind {
  Ident,      ///< identifier or keyword (rules distinguish by text)
  Number,     ///< integral / floating literal, including ' separators
  String,     ///< string literal; text holds the *contents* (no quotes)
  CharLit,    ///< character literal; text holds the contents
  Punct,      ///< operator / punctuator, longest-match ("->", "::", ...)
  Directive,  ///< whole preprocessor directive, continuations folded
  Comment,    ///< // or /* */ comment, text includes the delimiters
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  std::size_t line = 0;  ///< 1-based physical line of the first char
  std::size_t col = 0;   ///< 1-based column of the first char
};

/// True for [A-Za-z0-9_].
inline bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Tokenize one translation unit's text. Handles: // and /* */ comments
/// (kept as Comment tokens — annotations like PPF_GUARDED_BY live
/// there), string/char literals with escapes, raw strings R"delim(...)",
/// preprocessor directives with backslash-newline continuations folded
/// into a single Directive token, `#if 0` ... `#else/#elif/#endif`
/// regions dropped entirely, and CRLF / lone-CR line endings.
std::vector<Token> tokenize(const std::string& text);

}  // namespace ppf::analyze
