// ppf::analyze — diagnostic printers.
//
// Three ppf_analyze output modes plus the byte-compatible legacy pair
// that `ppf_lint` keeps emitting:
//
//   print_human   file:line:col: [rule] message   (+ "  fix: hint")
//   print_json    array of {rule,file,line,col,message,hint}
//   print_sarif   SARIF 2.1.0 (one run, rules catalogued, results with
//                 physical locations) — GitHub code scanning ingests it
//   print_legacy_human  file:line: [rule] message
//   print_legacy_json   array of {rule,file,line,message}
#pragma once

#include <iosfwd>
#include <vector>

#include "analyze/diagnostics.hpp"

namespace ppf::analyze {

void print_human(std::ostream& os, const std::vector<Diagnostic>& diags);
void print_json(std::ostream& os, const std::vector<Diagnostic>& diags);
void print_sarif(std::ostream& os, const std::vector<Diagnostic>& diags);

void print_legacy_human(std::ostream& os,
                        const std::vector<Diagnostic>& diags);
void print_legacy_json(std::ostream& os, const std::vector<Diagnostic>& diags);

/// JSON string escaping (exposed for the CLIs' own output).
std::string json_escape(const std::string& s);

}  // namespace ppf::analyze
