// Whole-machine configuration, defaulting to the paper's Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/check.hpp"
#include "common/assert.hpp"
#include "core/dataflow_core.hpp"
#include "core/ooo_core.hpp"
#include "filter/adaptive_filter.hpp"
#include "filter/deadblock_filter.hpp"
#include "filter/filter.hpp"
#include "filter/perceptron_filter.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "obs/recorder.hpp"
#include "prefetch/pmp.hpp"
#include "sim/energy.hpp"

namespace ppf::sim {

/// Which timing model drives the cycle loop.
enum class CoreModel : std::uint8_t {
  Occupancy,  ///< OooCore: statistical dependences + serial chase chains
  Dataflow,   ///< DataflowCore: true register dependences from the trace
};

inline const char* to_string(CoreModel m) {
  switch (m) {
    case CoreModel::Occupancy: return "occupancy";
    case CoreModel::Dataflow: return "dataflow";
  }
  PPF_ASSERT_MSG(false, "unhandled CoreModel");
  return "?";
}

/// Which implementation of the occupancy timing model runs the cycle
/// loop. Both produce byte-identical results (enforced by the
/// equiv.batched_vs_reference diff oracle); they differ only in speed.
enum class EngineMode : std::uint8_t {
  Reference,  ///< scalar OooCore: virtual dispatch, AoS fetch buffer
  Batched,    ///< stage-kernel BatchedCore: SoA decode, devirtualized
};

inline const char* to_string(EngineMode e) {
  switch (e) {
    case EngineMode::Reference: return "reference";
    case EngineMode::Batched: return "batched";
  }
  PPF_ASSERT_MSG(false, "unhandled EngineMode");
  return "?";
}

struct SimConfig {
  core::CoreConfig core;
  CoreModel core_model = CoreModel::Occupancy;
  /// Cycle-loop engine for the occupancy model (the dataflow model has a
  /// single implementation and ignores this). Part of warmup_key: a
  /// snapshot holds a paused engine of one concrete type, and resuming
  /// must exercise the engine the config asked for.
  EngineMode engine = EngineMode::Batched;

  mem::CacheConfig l1d{.name = "L1D",
                       .size_bytes = 8 * 1024,
                       .line_bytes = 32,
                       .associativity = 1,
                       .latency = 1,
                       .ports = 3};
  mem::CacheConfig l1i{.name = "L1I",
                       .size_bytes = 8 * 1024,
                       .line_bytes = 32,
                       .associativity = 1,
                       .latency = 1,
                       .ports = 1};
  mem::CacheConfig l2{.name = "L2",
                      .size_bytes = 512 * 1024,
                      .line_bytes = 32,
                      .associativity = 4,
                      .latency = 15,
                      .ports = 1};
  mem::BusConfig bus;
  mem::DramConfig dram;

  std::size_t prefetch_queue_entries = 64;

  /// Outstanding DRAM fills (memory-side MSHRs). 0 = unlimited.
  std::size_t mshr_entries = 8;

  /// Jouppi victim cache between L1D and L2 (0 = none, the paper's
  /// machine). Catches conflict evictions — including pollution victims.
  std::size_t victim_cache_entries = 0;

  /// Prefetch into the L2 only, leaving the L1 untouched — the classic
  /// structural alternative to L1 pollution control. PIB/RIB tracking
  /// and filter feedback then operate on L2 lines.
  bool prefetch_to_l2 = false;

  /// Section 5.5: route prefetches into a dedicated fully-associative
  /// buffer probed in parallel with the L1 instead of filling the L1.
  bool use_prefetch_buffer = false;
  std::size_t prefetch_buffer_entries = 16;

  /// Hardware prefetchers, by registry key (ppf::registry), in the order
  /// they run. The paper's machine is {"nsp", "sdp"}; "stride",
  /// "stream_buffer", "markov" and "pmp" are extensions. Order matters
  /// for determinism (candidates are routed in generator order) and is
  /// part of warmup_key.
  std::vector<std::string> prefetchers = {"nsp", "sdp"};
  /// Lines prefetched per NSP trigger. 2 = the "aggressive" setting the
  /// paper's motivation assumes; 1 = classic tagged next-line.
  unsigned nsp_degree = 2;
  bool enable_sw_prefetch = true;

  /// Pollution filter, by registry key ("none", "pa", "pc", "static",
  /// "adaptive", "deadblock", "perceptron", or anything registered via
  /// registry::register_filter).
  std::string filter = "none";
  filter::HistoryTableConfig history;
  filter::AdaptiveConfig adaptive;
  filter::DeadBlockConfig deadblock;
  filter::PerceptronConfig perceptron;
  prefetch::PmpConfig pmp;

  /// Capacity of the rejected-prefetch recovery buffer. A demand miss to
  /// a recently rejected line proves the filter wrong and trains the
  /// history table back toward "good" (the mechanism of the authors'
  /// journal follow-up, IEEE TC 2007; without it a rejected table entry
  /// can never receive feedback again and freezes). 0 disables.
  std::size_t filter_recovery_entries = 512;

  /// Per-event energy prices for the memory-system energy estimate.
  EnergyConfig energy;

  /// Observability (ppf::obs): metric registry, lifecycle trace, and
  /// interval timeseries. Never affects simulated behaviour, so it is
  /// excluded from warmup_key (snapshots are shared across obs
  /// settings) and from the deterministic result payloads.
  obs::ObsConfig obs;

  /// Invariant checking (ppf::check): per-component structural checks
  /// swept at a configurable cadence. Like obs, checks never affect
  /// simulated behaviour (they only read state), so the check config is
  /// excluded from warmup_key and snapshots are shared across check
  /// settings.
  check::CheckConfig check;

  /// Track the full Srinivasan prefetch taxonomy (useful / useful-
  /// polluting / polluting / useless) alongside the paper's good/bad
  /// classification. Analysis-only; costs a couple of hash maps.
  bool enable_taxonomy = true;

  /// Fault-injection test hook (ppf::diff, runlab fault tests): when
  /// non-zero, Simulator::run / run_from_snapshot throw std::runtime_error
  /// before simulating iff the run would dispatch at least this many
  /// instructions (warmup included). Never fires during warmup-snapshot
  /// *construction*, and is deliberately excluded from sim::warmup_key,
  /// so a failing job can never poison an arena or snapshot shared with
  /// healthy jobs.
  std::uint64_t diff_fail_at = 0;

  std::uint64_t max_instructions = 2'000'000;
  /// Instructions executed before statistics reset. The paper runs 300M
  /// instructions, amortising cold misses; at our (configurable) scaled
  /// run lengths an explicit warmup keeps cold effects out of the stats.
  std::uint64_t warmup_instructions = 500'000;
  std::uint64_t seed = 42;

  /// Paper's Table 1 machine. `l1d_kb` selects the L1 size study
  /// (Section 5.2.2 uses 32KB with a 4-cycle latency).
  static SimConfig paper_default();

  /// Apply the paper's L1-size/latency pairing: 8KB -> 1 cycle,
  /// 16KB -> 2 cycles (Sec 5.2.1 discussion), 32KB -> 4 cycles.
  void set_l1d_size_kb(unsigned kb);

  /// Apply the paper's port/latency pairing for the 8KB L1 (Section 5.4):
  /// 3 ports -> 1 cycle, 4 ports -> 2 cycles, 5 ports -> 3 cycles.
  void set_l1d_ports(unsigned ports);

  /// True when `name` is in the `prefetchers` list.
  [[nodiscard]] bool prefetcher_enabled(std::string_view name) const;

  /// Add (append) or remove `name` from the `prefetchers` list. The
  /// deprecated boolean override knobs (nsp=, sdp=, ...) resolve here;
  /// removal keeps the relative order of the remaining entries.
  void set_prefetcher(std::string_view name, bool enabled);
};

}  // namespace ppf::sim
