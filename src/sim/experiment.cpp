#include "sim/experiment.hpp"

#include "filter/static_filter.hpp"
#include "workload/benchmarks.hpp"

namespace ppf::sim {

SimResult run_benchmark(const SimConfig& cfg, const std::string& bench) {
  auto trace = workload::make_benchmark(bench, cfg.seed);
  Simulator sim(cfg);
  return sim.run(*trace);
}

std::vector<SimResult> run_all_benchmarks(const SimConfig& cfg) {
  std::vector<SimResult> out;
  for (const std::string& name : workload::benchmark_names()) {
    out.push_back(run_benchmark(cfg, name));
  }
  return out;
}

SimResult run_static_filter(const SimConfig& cfg, const std::string& bench) {
  filter::StaticFilter filt;

  // Phase 1: profile (admits everything, records outcomes).
  {
    auto trace = workload::make_benchmark(bench, cfg.seed);
    Simulator sim(cfg);
    (void)sim.run(*trace, &filt);
  }
  filt.freeze();

  // Phase 2: measure the same program under the frozen profile.
  auto trace = workload::make_benchmark(bench, cfg.seed);
  Simulator sim(cfg);
  return sim.run(*trace, &filt);
}

ScenarioResults run_filter_scenarios(const SimConfig& base,
                                     const std::string& bench) {
  ScenarioResults r;
  SimConfig cfg = base;
  cfg.filter = "none";
  r.none = run_benchmark(cfg, bench);
  cfg.filter = "pa";
  r.pa = run_benchmark(cfg, bench);
  cfg.filter = "pc";
  r.pc = run_benchmark(cfg, bench);
  return r;
}

}  // namespace ppf::sim
