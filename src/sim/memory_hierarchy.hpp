// The full memory system of Figure 3: L1 I/D, unified L2, memory bus,
// DRAM, the hardware prefetch generators, the prefetch queue, the
// optional dedicated prefetch buffer, and — between the prefetch sources
// and the queue — the cache pollution filter.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/flat_map.hpp"
#include "core/memory_iface.hpp"
#include "filter/filter.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "common/stats.hpp"
#include "mem/mshr.hpp"
#include "mem/prefetch_buffer.hpp"
#include "mem/prefetch_queue.hpp"
#include "mem/victim_cache.hpp"
#include "obs/recorder.hpp"
#include "prefetch/composite.hpp"
#include "sim/classifier.hpp"
#include "sim/inflight_map.hpp"
#include "sim/sim_config.hpp"
#include "sim/taxonomy.hpp"

namespace ppf::sim {

class MemoryHierarchy final : public core::DataMemory, public core::InstMemory {
 public:
  /// `external_filter` (non-owning, may be null) replaces the
  /// config-selected filter — used by flows where the filter must outlive
  /// one run, e.g. the static filter's profile-then-measure phases.
  explicit MemoryHierarchy(const SimConfig& cfg,
                           filter::PollutionFilter* external_filter = nullptr);

  /// Deep copy for warmup-snapshot reuse: caches, DRAM, queues, the
  /// prefetchers and the pollution filter are all copied with their warm
  /// state, and every internal cross-reference (prefetcher -> cache,
  /// filter -> cache) is rebound to the copy's own components. Throws
  /// std::runtime_error when the hierarchy cannot be cloned: it holds an
  /// external (caller-owned) filter, or a prefetcher/filter that does not
  /// implement clone_rebound.
  MemoryHierarchy(const MemoryHierarchy& o);
  MemoryHierarchy& operator=(const MemoryHierarchy&) = delete;

  // --- core::DataMemory ------------------------------------------------
  void begin_cycle(Cycle now) override;
  bool try_reserve_port(Cycle now) override;
  Cycle demand_access(Cycle now, Pc pc, Addr addr, bool is_store) override;
  void software_prefetch(Cycle now, Pc pc, Addr addr) override;
  void end_cycle(Cycle now) override;
  [[nodiscard]] bool quiescent() const override {
    // Everything else in the hierarchy (bus, DRAM, MSHRs, L2 port) is
    // event-driven; only the prefetch queue and carried-over port debt
    // do per-cycle work when the core is idle.
    return pq_.empty() && ports_borrowed_ == 0;
  }

  // --- core::InstMemory --------------------------------------------------
  Cycle fetch(Cycle now, Pc pc) override;

  /// End of run: drain caches/buffer so still-resident prefetches are
  /// classified, exactly once. Safe to call once only.
  void finalize();

  /// End-of-warmup statistics reset. Cache contents, the filter's history
  /// table, and prefetcher state are all kept warm; only counters clear.
  void reset_stats();

  // --- observers ---------------------------------------------------------
  [[nodiscard]] const mem::Cache& l1d() const { return l1d_; }
  [[nodiscard]] const mem::Cache& l1i() const { return l1i_; }
  [[nodiscard]] const mem::Cache& l2() const { return l2_; }
  [[nodiscard]] const mem::Bus& bus() const { return bus_; }
  [[nodiscard]] const mem::Dram& dram() const { return dram_; }
  [[nodiscard]] const mem::PrefetchQueue& prefetch_queue() const { return pq_; }
  [[nodiscard]] const mem::PrefetchBuffer* prefetch_buffer() const {
    return buffer_.get();
  }
  [[nodiscard]] const mem::VictimCache* victim_cache() const {
    return victim_.get();
  }
  [[nodiscard]] const mem::MshrFile& mshr() const { return mshr_; }
  /// Demand-load latency distribution (16-cycle buckets).
  [[nodiscard]] const Histogram& load_latency() const {
    return load_latency_;
  }
  [[nodiscard]] const PrefetchClassifier& classifier() const {
    return classifier_;
  }
  [[nodiscard]] const TaxonomyTracker& taxonomy() const { return taxonomy_; }
  [[nodiscard]] const filter::PollutionFilter& filter() const {
    return *active_filter_;
  }
  [[nodiscard]] filter::PollutionFilter& mutable_filter() {
    return *active_filter_;
  }
  [[nodiscard]] std::uint64_t demand_l1_accesses() const {
    return demand_accesses_;
  }
  [[nodiscard]] std::uint64_t prefetch_l1_fills() const {
    return prefetch_l1_fills_;
  }
  /// Rejected prefetches later proven useful by a demand miss.
  [[nodiscard]] std::uint64_t filter_recoveries() const { return recovered_; }

  /// Attach an observation recorder (non-owning; must outlive the runs
  /// it observes): registers every component's metrics and turns on
  /// lifecycle events + the per-cycle interval tick. Not copied by the
  /// clone constructor — each cloned run attaches its own recorder.
  void attach_obs(obs::Recorder& rec);
  [[nodiscard]] obs::Recorder* obs_recorder() const { return obs_; }

  /// Attach an invariant checker (non-owning; must outlive the run):
  /// registers every component's structural checks plus the
  /// cross-component conservation checks, and turns on the per-cycle
  /// cadence tick. Like the obs recorder, it is not copied by the clone
  /// constructor — each cloned run attaches its own checker.
  void attach_checks(check::Checker& chk);
  [[nodiscard]] check::Checker* checker() const { return chk_; }

  /// Test-only: mutable L1D access so checking tests can plant
  /// corruption (Cache::corrupt_line_for_test) and prove the checker
  /// reports it. Never used by the simulation itself.
  [[nodiscard]] mem::Cache& mutable_l1d_for_test() { return l1d_; }

 private:
  /// Fetch a line through the L2 (and memory beyond); optionally fill the
  /// L1. Returns the cycle the data is available.
  Cycle fetch_from_l2(Cycle now, Pc pc, Addr addr, bool is_prefetch,
                      bool fill_l1, const mem::FillInfo& info,
                      AccessType type);

  /// Route prefetch candidates through the pollution filter into the queue.
  void route_candidates(Cycle now,
                        const std::vector<prefetch::PrefetchRequest>& cands);

  /// Process one L1/buffer eviction: classify, feed the filter, write back.
  void handle_eviction(Cycle now, const mem::Eviction& ev);

  /// True if the line is resident anywhere a prefetch would be redundant.
  [[nodiscard]] bool line_resident(LineAddr line) const;

  /// Resolve in-flight fill timing for a line that hit in the L1.
  [[nodiscard]] Cycle inflight_ready(Cycle now, LineAddr line) const {
    return in_flight_.ready_at(now, line);
  }

  /// True while a fill for this line is still outstanding; completed
  /// entries behave exactly like absent ones.
  [[nodiscard]] bool line_in_flight(Cycle now, LineAddr line) const {
    return in_flight_.in_flight(now, line);
  }

  SimConfig cfg_;
  mem::Cache l1d_;
  mem::Cache l1i_;
  mem::Cache l2_;
  mem::Bus bus_;
  mem::Dram dram_;
  mem::PrefetchQueue pq_;
  std::unique_ptr<mem::PrefetchBuffer> buffer_;
  std::unique_ptr<mem::VictimCache> victim_;
  mem::MshrFile mshr_;
  Histogram load_latency_{16, 32};
  prefetch::CompositePrefetcher prefetcher_;
  std::unique_ptr<filter::PollutionFilter> owned_filter_;
  filter::PollutionFilter* active_filter_;  ///< owned_filter_ or external
  PrefetchClassifier classifier_;
  TaxonomyTracker taxonomy_;

  /// Record a rejected prefetch for possible recovery; check a demand
  /// miss against the recovery buffer.
  void note_rejected(Cycle now, const filter::PrefetchCandidate& c);
  void check_recovery(Cycle now, LineAddr line);

  /// Estimated L1D residence time of a line, from the fill-interval EMA.
  [[nodiscard]] Cycle estimated_residence() const;

  /// Lines whose fill has been initiated but whose data arrives later.
  InFlightMap in_flight_;

  /// FIFO buffer of recently rejected prefetches (line -> candidate).
  /// Entries are also bounded in *time*: a rejection only counts as
  /// "wrongly filtered" if the demand miss arrives within the line's
  /// estimated would-have-been L1 residence time — a demand that arrives
  /// later would have found the prefetched line already evicted, i.e. the
  /// prefetch really was bad.
  struct RejectedEntry {
    Pc trigger_pc = 0;
    PrefetchSource source = PrefetchSource::Software;
    Cycle reject_cycle = 0;
  };
  FlatHashMap<RejectedEntry> rejected_;
  std::deque<LineAddr> rejected_fifo_;
  std::uint64_t recovered_ = 0;
  Cycle last_l1_fill_cycle_ = 0;
  double ema_fill_interval_ = 16.0;
  Cycle l2_next_free_ = 0;

  std::uint32_t ports_left_ = 0;
  std::uint32_t ports_borrowed_ = 0;  ///< ports prefetches occupy next cycle

  std::uint64_t demand_accesses_ = 0;
  std::uint64_t prefetch_l1_fills_ = 0;
  bool finalized_ = false;

  /// Observation recorder (non-owning, null when obs is off — the whole
  /// instrumentation is then one pointer test per site).
  obs::Recorder* obs_ = nullptr;

  /// Prefetched lines resident (and therefore not yet classified) across
  /// the whole hierarchy: L1D + L2 PIB lines plus the dedicated buffer.
  [[nodiscard]] std::uint64_t unclassified_pib() const;

  /// Invariant checker (non-owning, null when check=off — the simulation
  /// then pays one pointer test per cycle).
  check::Checker* chk_ = nullptr;
  /// unclassified_pib() at checker attach / stats reset: the classifier
  /// counters start from zero at the warmup boundary while prefetched
  /// lines stay resident, so the conservation law needs this baseline.
  std::uint64_t baseline_unclassified_ = 0;

  std::vector<prefetch::PrefetchRequest> scratch_cands_;
};

/// Build the pollution filter selected by the config (a registry key).
/// `l1` is needed by victim-probing filters (filter=deadblock) and must
/// outlive the returned filter. Throws std::invalid_argument for an
/// unknown key, naming the valid registry values.
std::unique_ptr<filter::PollutionFilter> make_filter(const SimConfig& cfg,
                                                     const mem::Cache& l1);

}  // namespace ppf::sim
