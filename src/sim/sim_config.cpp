#include "sim/sim_config.hpp"

#include "common/assert.hpp"

namespace ppf::sim {

SimConfig SimConfig::paper_default() { return SimConfig{}; }

void SimConfig::set_l1d_size_kb(unsigned kb) {
  l1d.size_bytes = static_cast<std::uint64_t>(kb) * 1024;
  switch (kb) {
    case 8: l1d.latency = 1; break;
    case 16: l1d.latency = 2; break;
    case 32: l1d.latency = 4; break;  // Section 5.2.2
    default:
      PPF_CHECK_MSG(false, "unsupported L1 size for the paper's study");
  }
}

bool SimConfig::prefetcher_enabled(std::string_view name) const {
  for (const std::string& p : prefetchers) {
    if (p == name) return true;
  }
  return false;
}

void SimConfig::set_prefetcher(std::string_view name, bool enabled) {
  if (enabled) {
    if (!prefetcher_enabled(name)) prefetchers.emplace_back(name);
    return;
  }
  for (auto it = prefetchers.begin(); it != prefetchers.end(); ++it) {
    if (*it == name) {
      prefetchers.erase(it);
      return;
    }
  }
}

void SimConfig::set_l1d_ports(unsigned ports) {
  l1d.ports = ports;
  switch (ports) {
    case 3: l1d.latency = 1; break;
    case 4: l1d.latency = 2; break;  // Section 5.4
    case 5: l1d.latency = 3; break;
    default:
      PPF_CHECK_MSG(false, "unsupported port count for the paper's study");
  }
}

}  // namespace ppf::sim
