// Prefetch effectiveness accounting.
//
// The paper's two-way taxonomy (Section 3): a prefetch is *good* if the
// prefetched line is demand-referenced before it leaves the cache, *bad*
// if it is never referenced during its lifetime. Classification happens
// when the line's PIB/RIB bits are sampled — at eviction, at promotion
// out of the prefetch buffer, or in the end-of-run drain.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ppf::sim {

struct SourceBreakdown {
  std::uint64_t sw = 0;
  std::uint64_t nsp = 0;
  std::uint64_t sdp = 0;
  std::uint64_t stride = 0;
  std::uint64_t stream = 0;
  std::uint64_t markov = 0;
  std::uint64_t region = 0;  ///< PMP region-pattern prefetches

  [[nodiscard]] std::uint64_t total() const {
    return sw + nsp + sdp + stride + stream + markov + region;
  }
};

class PrefetchClassifier {
 public:
  /// A prefetch passed the filter and was issued to the memory system.
  void record_issued(PrefetchSource s) { ++at(issued_, s); }

  /// A prefetch was rejected by the pollution filter.
  void record_filtered(PrefetchSource s) { ++at(filtered_, s); }

  /// A candidate was squashed because the line was already resident,
  /// in flight, or queued (no cost, per the paper's setup).
  void record_squashed() { ++squashed_; }

  /// Final PIB/RIB verdict for one issued prefetch.
  void record_outcome(PrefetchSource s, bool referenced) {
    ++at(referenced ? good_ : bad_, s);
  }

  [[nodiscard]] const SourceBreakdown& issued() const { return issued_; }
  [[nodiscard]] const SourceBreakdown& filtered() const { return filtered_; }
  [[nodiscard]] const SourceBreakdown& good() const { return good_; }
  [[nodiscard]] const SourceBreakdown& bad() const { return bad_; }
  [[nodiscard]] std::uint64_t squashed() const { return squashed_; }

  /// bad/good ratio (the paper's Figure 5/8/13/15 metric).
  [[nodiscard]] double bad_good_ratio() const;

  /// Zero all counters (end-of-warmup reset).
  void reset() { *this = PrefetchClassifier{}; }

 private:
  static std::uint64_t& at(SourceBreakdown& b, PrefetchSource s) {
    switch (s) {
      case PrefetchSource::Software: return b.sw;
      case PrefetchSource::NextSequence: return b.nsp;
      case PrefetchSource::ShadowDirectory: return b.sdp;
      case PrefetchSource::Stride: return b.stride;
      case PrefetchSource::StreamBuffer: return b.stream;
      case PrefetchSource::Markov: return b.markov;
      case PrefetchSource::RegionPattern: return b.region;
    }
    PPF_ASSERT_MSG(false, "unhandled PrefetchSource");
    return b.sw;
  }

  SourceBreakdown issued_;
  SourceBreakdown filtered_;
  SourceBreakdown good_;
  SourceBreakdown bad_;
  std::uint64_t squashed_ = 0;
};

}  // namespace ppf::sim
