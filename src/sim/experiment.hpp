// Experiment driver: canned runs matching the paper's evaluation flows.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ppf::sim {

/// Run one named benchmark under `cfg`. The workload seed is derived from
/// cfg.seed, so identical configs reproduce identical traces.
SimResult run_benchmark(const SimConfig& cfg, const std::string& bench);

/// Run every Table 2 benchmark under `cfg`, in Table 2 order.
std::vector<SimResult> run_all_benchmarks(const SimConfig& cfg);

/// Two-phase static-filter flow (Srinivasan et al. [18]): profile the
/// benchmark once with the filter recording outcomes, freeze the profile,
/// then measure a second, identical run filtered by the frozen profile.
SimResult run_static_filter(const SimConfig& cfg, const std::string& bench);

/// The three default evaluation scenarios of Section 5.2.
struct ScenarioResults {
  SimResult none;
  SimResult pa;
  SimResult pc;
};
ScenarioResults run_filter_scenarios(const SimConfig& base,
                                     const std::string& bench);

}  // namespace ppf::sim
