// Event-based memory-system energy model.
//
// The paper motivates filtering partly by the "unnecessary energy
// consumption" of ineffective prefetches; this model makes that claim
// measurable. Per-event energies are c.2003-era ballparks (CACTI-class
// estimates for a 130nm process), configurable and deliberately simple:
// total energy = sum over event classes of (count x energy-per-event).
// Relative comparisons between filter configurations are the point, not
// absolute joules.
#pragma once

#include <cstdint>

namespace ppf::sim {

struct EnergyConfig {
  // nanojoules per event
  double l1_access = 0.10;      ///< 8KB SRAM read/write
  double l2_access = 0.50;      ///< 512KB SRAM access
  double dram_access = 15.0;    ///< off-chip read or writeback
  double bus_beat = 2.0;        ///< driving the 64-byte off-chip bus
  double table_lookup = 0.005;  ///< 1KB history-table read or update
};

/// Event counts the model charges for (filled by the simulator from the
/// hierarchy's statistics).
struct EnergyEvents {
  std::uint64_t l1_accesses = 0;   ///< demand + prefetch probes + fills
  std::uint64_t l2_accesses = 0;
  std::uint64_t dram_accesses = 0; ///< reads + writebacks
  std::uint64_t bus_beats = 0;     ///< busy cycles / cycles-per-beat
  std::uint64_t table_ops = 0;     ///< filter lookups + updates
};

struct EnergyBreakdown {
  double l1_nj = 0;
  double l2_nj = 0;
  double dram_nj = 0;
  double bus_nj = 0;
  double table_nj = 0;

  [[nodiscard]] double total_nj() const {
    return l1_nj + l2_nj + dram_nj + bus_nj + table_nj;
  }
};

/// Price the events under the config.
EnergyBreakdown compute_energy(const EnergyConfig& cfg,
                               const EnergyEvents& ev);

}  // namespace ppf::sim
