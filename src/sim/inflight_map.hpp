// Flat open-addressing map (LineAddr -> ready cycle) for the
// hierarchy's in-flight fill tracking — the hottest associative lookup
// in the simulator (one probe per demand access plus one per routed
// prefetch candidate).
//
// It exploits one property of the workload: simulation time is
// monotonic, so an entry whose ready cycle has passed is semantically
// identical to an absent one and may be dropped at any moment. Erasure
// therefore needs no tombstones — stale slots are simply skipped at
// lookup and reclaimed wholesale by an amortized rebuild that keeps
// only still-pending fills. Storage is two flat vectors, so cloning a
// warm hierarchy for a snapshot copies this map with two memcpys
// instead of an std::unordered_map's node-by-node walk.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace ppf::sim {

class InFlightMap {
 public:
  InFlightMap() { rebuild_empty(kMinSlots); }

  /// Ready cycle for `line`, or `now` when the line is absent or its
  /// fill has already completed.
  [[nodiscard]] Cycle ready_at(Cycle now, LineAddr line) const {
    std::uint64_t i = mix64(line) & mask_;
    while (used_[i] != 0) {
      if (lines_[i] == line) return ready_[i] > now ? ready_[i] : now;
      i = (i + 1) & mask_;
    }
    return now;
  }

  [[nodiscard]] bool in_flight(Cycle now, LineAddr line) const {
    return ready_at(now, line) > now;
  }

  /// Record a fill for `line` completing at `ready`.
  void note_fill(Cycle now, LineAddr line, Cycle ready) {
    std::uint64_t i = mix64(line) & mask_;
    while (used_[i] != 0) {
      if (lines_[i] == line) {
        ready_[i] = ready;
        return;
      }
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    lines_[i] = line;
    ready_[i] = ready;
    // Rebuild at half load so probe chains stay short. Sizing at 4x the
    // live count guarantees at least capacity/4 fresh insertions before
    // the next rebuild — amortized O(1) per fill.
    if (++occupied_ * 2 >= used_.size()) rebuild(now);
  }

 private:
  static constexpr std::size_t kMinSlots = 1024;

  void rebuild_empty(std::size_t slots) {
    used_.assign(slots, 0);
    lines_.assign(slots, 0);
    ready_.assign(slots, 0);
    mask_ = slots - 1;
    occupied_ = 0;
  }

  void rebuild(Cycle now) {
    std::vector<LineAddr> live_lines;
    std::vector<Cycle> live_ready;
    live_lines.reserve(occupied_);
    live_ready.reserve(occupied_);
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i] != 0 && ready_[i] > now) {
        live_lines.push_back(lines_[i]);
        live_ready.push_back(ready_[i]);
      }
    }
    std::size_t slots = kMinSlots;
    while (slots < 4 * live_lines.size()) slots <<= 1;
    rebuild_empty(slots);
    for (std::size_t i = 0; i < live_lines.size(); ++i) {
      std::uint64_t j = mix64(live_lines[i]) & mask_;
      while (used_[j] != 0) j = (j + 1) & mask_;
      used_[j] = 1;
      lines_[j] = live_lines[i];
      ready_[j] = live_ready[i];
    }
    occupied_ = live_lines.size();
  }

  std::vector<std::uint8_t> used_;
  std::vector<LineAddr> lines_;
  std::vector<Cycle> ready_;
  std::uint64_t mask_ = 0;
  std::size_t occupied_ = 0;
};

}  // namespace ppf::sim
