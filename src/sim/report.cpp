#include "sim/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace ppf::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PPF_CHECK_MSG(cells.size() == headers_.size(),
                 "row width must match headers");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

void csv_field(std::ostream& os, const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) {
    os << f;
    return;
  }
  os << '"';
  for (char c : f) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) os << ',';
    csv_field(os, row[i]);
  }
  os << "\n";
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  csv_row(os, headers_);
  for (const auto& row : rows_) csv_row(os, row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
  return os.str();
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

void print_result(std::ostream& os, const SimResult& r) {
  Table t({"metric", "value"});
  t.add_row({"workload", r.workload});
  t.add_row({"filter", r.filter_name});
  t.add_row({"instructions", fmt_u64(r.core.instructions)});
  t.add_row({"cycles", fmt_u64(r.core.cycles)});
  t.add_row({"IPC", fmt(r.ipc())});
  t.add_row({"loads / stores",
             fmt_u64(r.core.loads) + " / " + fmt_u64(r.core.stores)});
  t.add_row({"branches (mispredicted)",
             fmt_u64(r.core.branches) + " (" +
                 fmt_u64(r.core.mispredictions) + ")"});
  t.add_row({"L1D miss rate", fmt_pct(r.l1d_miss_rate(), 2)});
  t.add_row({"L2 miss rate", fmt_pct(r.l2_miss_rate(), 2)});
  t.add_row({"ROB-full stall cycles", fmt_u64(r.core.rob_full_stall_cycles)});
  t.add_row({"prefetches issued", fmt_u64(r.prefetch_issued.total())});
  t.add_row({"  by source (sw/nsp/sdp/stride/stream/markov/region)",
             fmt_u64(r.prefetch_issued.sw) + "/" +
                 fmt_u64(r.prefetch_issued.nsp) + "/" +
                 fmt_u64(r.prefetch_issued.sdp) + "/" +
                 fmt_u64(r.prefetch_issued.stride) + "/" +
                 fmt_u64(r.prefetch_issued.stream) + "/" +
                 fmt_u64(r.prefetch_issued.markov) + "/" +
                 fmt_u64(r.prefetch_issued.region)});
  t.add_row({"good / bad prefetches",
             fmt_u64(r.good_total()) + " / " + fmt_u64(r.bad_total())});
  t.add_row({"bad/good ratio", fmt(r.bad_good_ratio())});
  t.add_row({"filtered (rejected)", fmt_u64(r.filter_rejected)});
  t.add_row({"filter recoveries", fmt_u64(r.filter_recoveries)});
  t.add_row({"squashed (resident/in-flight)", fmt_u64(r.prefetch_squashed)});
  if (r.taxonomy.total() > 0) {
    t.add_row({"taxonomy useful / useful-pol",
               fmt_u64(r.taxonomy.useful) + " / " +
                   fmt_u64(r.taxonomy.useful_polluting)});
    t.add_row({"taxonomy polluting / useless",
               fmt_u64(r.taxonomy.polluting) + " / " +
                   fmt_u64(r.taxonomy.useless)});
  }
  t.add_row({"bus transfers (prefetch)",
             fmt_u64(r.bus_transfers) + " (" +
                 fmt_u64(r.bus_prefetch_transfers) + ")"});
  t.add_row({"avg demand-load latency", fmt(r.avg_load_latency, 1)});
  t.add_row({"MSHR-full stalls", fmt_u64(r.mshr_stalls)});
  if (r.victim_hits > 0) {
    t.add_row({"victim-cache hits", fmt_u64(r.victim_hits)});
  }
  t.print(os);
}

const std::vector<std::string>& result_row_headers() {
  static const std::vector<std::string> headers = {
      "workload",      "filter",       "instructions", "cycles",
      "ipc",           "l1d_miss_rate", "l2_miss_rate", "prefetch_good",
      "prefetch_bad",  "filtered",     "recoveries",   "bus_transfers"};
  return headers;
}

std::vector<std::string> result_row(const SimResult& r) {
  return {r.workload,
          r.filter_name,
          fmt_u64(r.core.instructions),
          fmt_u64(r.core.cycles),
          fmt(r.ipc(), 6),
          fmt(r.l1d_miss_rate(), 6),
          fmt(r.l2_miss_rate(), 6),
          fmt_u64(r.good_total()),
          fmt_u64(r.bad_total()),
          fmt_u64(r.filter_rejected),
          fmt_u64(r.filter_recoveries),
          fmt_u64(r.bus_transfers)};
}

Table result_table(const SimResult& r) {
  Table t(result_row_headers());
  t.add_row(result_row(r));
  return t;
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& what) {
  os << "\n=== " << id << " — " << what << " ===\n";
  os << "(reproduction of Zhuang & Lee, ICPP 2003; shapes, not absolute "
        "numbers, are the comparison target)\n\n";
}

}  // namespace ppf::sim
