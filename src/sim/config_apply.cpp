#include "sim/config_apply.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <stdexcept>

#include "registry/registry.hpp"

namespace ppf::sim {

HashKind parse_hash_kind(const std::string& name) {
  if (name == "modulo") return HashKind::Modulo;
  if (name == "fold-xor" || name == "foldxor") return HashKind::FoldXor;
  if (name == "fibonacci") return HashKind::Fibonacci;
  if (name == "mix64") return HashKind::Mix64;
  throw std::invalid_argument("unknown hash kind: " + name);
}

check::CheckMode parse_check_mode(const std::string& name) {
  if (name == "off") return check::CheckMode::Off;
  if (name == "final") return check::CheckMode::Final;
  if (name == "paranoid") return check::CheckMode::Paranoid;
  throw std::invalid_argument("unknown check mode: " + name);
}

const std::vector<OverrideDoc>& override_docs() {
  static const std::vector<OverrideDoc> docs = {
      {"instructions", "measured instructions per run"},
      {"warmup", "warmup instructions before the statistics reset"},
      {"seed", "master seed (workload + all randomized state)"},
      {"filter", "pollution filter, by registry key (see docs/PLUGINS.md)"},
      {"history_entries", "history table entries (power of two)"},
      {"history_bits", "history counter width in bits"},
      {"history_init", "history counter initial value"},
      {"history_hash", "table index hash: modulo|fold-xor|fibonacci|mix64"},
      {"source_separated", "tag table index with the prefetch source (bool)"},
      {"recovery_entries", "rejected-prefetch recovery buffer (0 disables)"},
      {"perceptron_entries", "perceptron filter rows per feature table"},
      {"perceptron_weight_bits", "perceptron weight width in bits (2-8)"},
      {"perceptron_theta", "perceptron training threshold"},
      {"l1d_kb", "L1 D-cache size in KB (8/16/32, sets paper latency)"},
      {"l1d_ports", "L1 D-cache ports (3/4/5, sets paper latency)"},
      {"l2_kb", "L2 size in KB"},
      {"line_bytes", "cache line size in bytes (all levels)"},
      {"mem_latency", "main memory latency in core cycles"},
      {"bus_cycles_per_beat", "core cycles per 64-byte bus beat"},
      {"queue_entries", "prefetch queue capacity"},
      {"mshr", "outstanding DRAM fills (0 = unlimited)"},
      {"victim_entries", "victim cache entries (0 = none)"},
      {"prefetch_l2", "prefetch into the L2 only (bool)"},
      {"prefetch_buffer", "use the dedicated 16-entry prefetch buffer (bool)"},
      {"prefetchers", "comma list of prefetcher registry keys, in order"},
      {"replacement", "cache replacement policy, all levels (registry key)"},
      {"nsp_degree", "NSP lines per trigger"},
      {"pmp_region_lines", "PMP region size in cache lines (power of two)"},
      {"pmp_degree_cap", "PMP max prefetches per trigger (0 = whole region)"},
      {"nsp", "deprecated alias: toggle 'nsp' in prefetchers= (bool)"},
      {"sdp", "deprecated alias: toggle 'sdp' in prefetchers= (bool)"},
      {"stride", "deprecated alias: toggle 'stride' in prefetchers= (bool)"},
      {"stream_buffer",
       "deprecated alias: toggle 'stream_buffer' in prefetchers= (bool)"},
      {"markov", "deprecated alias: toggle 'markov' in prefetchers= (bool)"},
      {"taxonomy", "track the Srinivasan prefetch taxonomy (bool)"},
      {"swpf", "honour software prefetch instructions (bool)"},
      {"check", "invariant checking: off|final|paranoid (docs/CHECKING.md)"},
      {"check_period", "cycles between paranoid check sweeps"},
      {"check_fail_at", "test hook: inject a checker.tripwire violation at cycle N"},
      {"diff_fail_at", "test hook: throw before simulating runs of >= N instructions"},
      {"core_model", "timing model: occupancy|dataflow"},
      {"engine", "cycle-loop engine: batched|reference (byte-identical)"},
      {"width", "core dispatch/retire width"},
      {"rob", "reorder buffer entries"},
      {"lsq", "load/store queue entries"},
      {"dep_prob", "statistical load-dependence probability"},
  };
  return docs;
}

std::string first_unknown_key(const ParamMap& params,
                              const std::vector<std::string>& extra) {
  static const std::set<std::string> known = [] {
    std::set<std::string> k;
    for (const OverrideDoc& d : override_docs()) k.insert(d.key);
    return k;
  }();
  for (const auto& [key, value] : params.entries()) {
    if (known.find(key) != known.end()) continue;
    if (std::find(extra.begin(), extra.end(), key) != extra.end()) continue;
    return key;
  }
  return "";
}

const std::vector<std::string>& ppf_sim_driver_keys() {
  static const std::vector<std::string> keys = {
      "bench",        "trace",     "csv",
      "config",       "trace_cache", "warmup_share",
      "obs",          "sample_interval", "trace_out",
      "timeseries_out", "help"};
  return keys;
}

const std::vector<std::string>& ppf_batch_driver_keys() {
  static const std::vector<std::string> keys = {
      "bench",       "filter",      "seeds",        "seed_list",
      "jobs",        "out",         "csv",          "progress",
      "timeout_ms",  "trace_cache", "warmup_share", "telemetry_json",
      "obs",         "sample_interval", "trace_out", "timeseries_out",
      "trace_cache_mb", "snapshot_cache_mb", "cancel_after",
      "help"};
  return keys;
}

void apply_overrides(SimConfig& cfg, const ParamMap& params) {
  static const std::set<std::string> known = [] {
    std::set<std::string> k;
    for (const OverrideDoc& d : override_docs()) k.insert(d.key);
    return k;
  }();
  for (const auto& [key, value] : params.entries()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("unknown configuration key: " + key);
    }
  }

  cfg.max_instructions = params.get_u64("instructions", cfg.max_instructions);
  cfg.warmup_instructions = params.get_u64("warmup", cfg.warmup_instructions);
  cfg.seed = params.get_u64("seed", cfg.seed);
  cfg.core.seed = cfg.seed;

  if (params.has("filter")) {
    const std::string f = params.get_string("filter", "");
    if (!registry::has_filter(f)) {
      throw std::invalid_argument("unknown filter '" + f + "' (valid: " +
                                  registry::valid_filter_values() + ")");
    }
    cfg.filter = f;
  }
  cfg.history.entries =
      params.get_u64("history_entries", cfg.history.entries);
  cfg.history.counter_bits = static_cast<unsigned>(
      params.get_u64("history_bits", cfg.history.counter_bits));
  cfg.history.init_value = static_cast<std::uint8_t>(
      params.get_u64("history_init", cfg.history.init_value));
  if (params.has("history_hash")) {
    cfg.history.hash = parse_hash_kind(params.get_string("history_hash", ""));
  }
  cfg.history.source_separated =
      params.get_bool("source_separated", cfg.history.source_separated);
  cfg.filter_recovery_entries =
      params.get_u64("recovery_entries", cfg.filter_recovery_entries);
  cfg.perceptron.table_entries =
      params.get_u64("perceptron_entries", cfg.perceptron.table_entries);
  cfg.perceptron.weight_bits = static_cast<unsigned>(
      params.get_u64("perceptron_weight_bits", cfg.perceptron.weight_bits));
  cfg.perceptron.theta = static_cast<int>(
      params.get_u64("perceptron_theta",
                     static_cast<std::uint64_t>(cfg.perceptron.theta)));

  if (params.has("l1d_kb")) {
    cfg.set_l1d_size_kb(
        static_cast<unsigned>(params.get_u64("l1d_kb", 8)));
  }
  if (params.has("l1d_ports")) {
    cfg.set_l1d_ports(
        static_cast<unsigned>(params.get_u64("l1d_ports", 3)));
  }
  if (params.has("l2_kb")) {
    cfg.l2.size_bytes = params.get_u64("l2_kb", 512) * 1024;
  }
  if (params.has("line_bytes")) {
    const std::uint32_t lb =
        static_cast<std::uint32_t>(params.get_u64("line_bytes", 32));
    cfg.l1d.line_bytes = lb;
    cfg.l1i.line_bytes = lb;
    cfg.l2.line_bytes = lb;
    cfg.core.ifetch_line_bytes = lb;
  }
  cfg.dram.latency = params.get_u64("mem_latency", cfg.dram.latency);
  cfg.bus.cycles_per_beat = static_cast<std::uint32_t>(
      params.get_u64("bus_cycles_per_beat", cfg.bus.cycles_per_beat));
  cfg.prefetch_queue_entries =
      params.get_u64("queue_entries", cfg.prefetch_queue_entries);
  cfg.mshr_entries = params.get_u64("mshr", cfg.mshr_entries);
  cfg.victim_cache_entries =
      params.get_u64("victim_entries", cfg.victim_cache_entries);
  cfg.prefetch_to_l2 = params.get_bool("prefetch_l2", cfg.prefetch_to_l2);
  cfg.use_prefetch_buffer =
      params.get_bool("prefetch_buffer", cfg.use_prefetch_buffer);

  if (params.has("prefetchers")) {
    cfg.prefetchers =
        registry::parse_prefetcher_list(params.get_string("prefetchers", ""));
  }
  // Deprecated boolean aliases (pre-registry knobs), applied after
  // prefetchers= so scripts mixing both get the toggles they wrote.
  for (const char* name :
       {"nsp", "sdp", "stride", "stream_buffer", "markov"}) {
    if (params.has(name)) {
      cfg.set_prefetcher(name,
                         params.get_bool(name, cfg.prefetcher_enabled(name)));
    }
  }
  if (params.has("replacement")) {
    const mem::ReplacementKind r =
        registry::parse_replacement(params.get_string("replacement", ""));
    cfg.l1d.replacement = r;
    cfg.l1i.replacement = r;
    cfg.l2.replacement = r;
  }
  cfg.nsp_degree =
      static_cast<unsigned>(params.get_u64("nsp_degree", cfg.nsp_degree));
  cfg.pmp.region_lines = static_cast<unsigned>(
      params.get_u64("pmp_region_lines", cfg.pmp.region_lines));
  cfg.pmp.degree_cap = static_cast<unsigned>(
      params.get_u64("pmp_degree_cap", cfg.pmp.degree_cap));
  cfg.enable_taxonomy = params.get_bool("taxonomy", cfg.enable_taxonomy);
  cfg.enable_sw_prefetch = params.get_bool("swpf", cfg.enable_sw_prefetch);

  if (params.has("check")) {
    cfg.check.mode = parse_check_mode(params.get_string("check", ""));
  }
  cfg.check.period = params.get_u64("check_period", cfg.check.period);
  cfg.check.fail_at = params.get_u64("check_fail_at", cfg.check.fail_at);
  cfg.diff_fail_at = params.get_u64("diff_fail_at", cfg.diff_fail_at);

  if (params.has("core_model")) {
    const std::string m = params.get_string("core_model", "");
    if (m == "occupancy") {
      cfg.core_model = CoreModel::Occupancy;
    } else if (m == "dataflow") {
      cfg.core_model = CoreModel::Dataflow;
    } else {
      throw std::invalid_argument("unknown core model: " + m);
    }
  }
  if (params.has("engine")) {
    const std::string e = params.get_string("engine", "");
    if (e == "batched") {
      cfg.engine = EngineMode::Batched;
    } else if (e == "reference") {
      cfg.engine = EngineMode::Reference;
    } else {
      throw std::invalid_argument("unknown engine: " + e);
    }
  }
  cfg.core.width =
      static_cast<unsigned>(params.get_u64("width", cfg.core.width));
  cfg.core.rob_entries =
      static_cast<unsigned>(params.get_u64("rob", cfg.core.rob_entries));
  cfg.core.lsq_entries =
      static_cast<unsigned>(params.get_u64("lsq", cfg.core.lsq_entries));
  cfg.core.dep_on_load_prob =
      params.get_double("dep_prob", cfg.core.dep_on_load_prob);
}

void print_config(std::ostream& os, const SimConfig& cfg) {
  os << "machine: " << cfg.core.width << "-wide OoO, ROB "
     << cfg.core.rob_entries << ", LSQ " << cfg.core.lsq_entries << "\n"
     << "L1D: " << cfg.l1d.size_bytes / 1024 << "KB "
     << (cfg.l1d.associativity == 1
             ? std::string("direct-mapped")
             : std::to_string(cfg.l1d.associativity) + "-way")
     << ", " << cfg.l1d.line_bytes << "B lines, " << cfg.l1d.latency
     << "cy, " << cfg.l1d.ports << " ports\n"
     << "L2: " << cfg.l2.size_bytes / 1024 << "KB, " << cfg.l2.latency
     << "cy; memory " << cfg.dram.latency << "cy; bus "
     << cfg.bus.width_bytes << "B/" << cfg.bus.cycles_per_beat << "cy\n"
     << "prefetch: ";
  if (cfg.prefetchers.empty()) {
    os << "(none)";
  } else {
    for (std::size_t i = 0; i < cfg.prefetchers.size(); ++i) {
      if (i > 0) os << ',';
      os << cfg.prefetchers[i];
    }
  }
  os << " (nsp deg " << cfg.nsp_degree << ") sw("
     << (cfg.enable_sw_prefetch ? "on" : "off") << "), queue "
     << cfg.prefetch_queue_entries
     << (cfg.use_prefetch_buffer ? ", dedicated buffer" : "") << "\n"
     << "replacement: " << mem::to_string(cfg.l1d.replacement) << "\n"
     << "filter: " << cfg.filter << ", table "
     << cfg.history.entries << " x " << cfg.history.counter_bits
     << "b (init " << static_cast<unsigned>(cfg.history.init_value)
     << ", " << to_string(cfg.history.hash) << ", src-sep "
     << (cfg.history.source_separated ? "on" : "off") << "), recovery "
     << cfg.filter_recovery_entries << "\n"
     << "run: " << cfg.max_instructions << " instructions after "
     << cfg.warmup_instructions << " warmup, seed " << cfg.seed << "\n";
}

}  // namespace ppf::sim
