// Apply string key=value overrides (CLI / config file) onto a SimConfig.
//
// This is what makes every bench and example binary fully scriptable:
//   ./bench_fig6 l1d_kb=32 filter=pc history_entries=8192
// Unknown keys throw, so typos fail loudly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/sim_config.hpp"

namespace ppf::sim {

/// Apply every recognised key in `params` onto `cfg`.
/// Throws std::invalid_argument on unknown keys or unparsable values.
void apply_overrides(SimConfig& cfg, const ParamMap& params);

/// The recognised override keys, with one-line help (for --help output).
struct OverrideDoc {
  std::string key;
  std::string help;
};
const std::vector<OverrideDoc>& override_docs();

/// First key in `params` that is neither a machine-override key nor one
/// of the driver-specific `extra` keys; "" when every key is known. CLIs
/// use this to reject typos up front (named key, exit 2) instead of
/// letting them slip through or fail mid-run.
std::string first_unknown_key(const ParamMap& params,
                              const std::vector<std::string>& extra);

/// Driver-only keys accepted by the ppf_sim CLI on top of the machine
/// override keys. Exposed (rather than inlined in the tool) so the
/// unknown-key rejection contract is unit-testable.
const std::vector<std::string>& ppf_sim_driver_keys();

/// Driver-only keys accepted by the ppf_batch CLI.
const std::vector<std::string>& ppf_batch_driver_keys();

/// Render the effective configuration as human-readable text.
void print_config(std::ostream& os, const SimConfig& cfg);

/// Parse a hash name ("modulo", "fold-xor", "fibonacci", "mix64").
HashKind parse_hash_kind(const std::string& name);

/// Parse a check mode ("off", "final", "paranoid").
check::CheckMode parse_check_mode(const std::string& name);

}  // namespace ppf::sim
