#include "sim/taxonomy.hpp"

#include <algorithm>

namespace ppf::sim {

void TaxonomyTracker::on_prefetch_fill(LineAddr p,
                                       std::optional<LineAddr> victim,
                                       bool victim_was_live) {
  // A racing refill of a line already tracked keeps the original entry.
  if (live_.find(p) != live_.end()) return;
  Pending e;
  e.prefetched = p;
  if (victim.has_value() && victim_was_live) {
    e.victim = *victim;
    e.has_victim = true;
    victims_[*victim].push_back(p);
  }
  live_.emplace(p, e);
}

void TaxonomyTracker::on_demand_miss(LineAddr line) {
  const auto it = victims_.find(line);
  if (it == victims_.end()) return;
  // The displaced line came back as a demand miss: every prefetch that
  // displaced it (still in flight) is chargeable with that miss.
  for (LineAddr p : it->second) {
    const auto pit = live_.find(p);
    if (pit != live_.end()) pit->second.victim_remissed = true;
  }
  victims_.erase(it);
}

void TaxonomyTracker::on_prefetch_used(LineAddr p) {
  const auto it = live_.find(p);
  if (it != live_.end()) it->second.used = true;
}

void TaxonomyTracker::classify(const Pending& e) {
  if (e.used) {
    if (e.victim_remissed)
      ++counts_.useful_polluting;
    else
      ++counts_.useful;
  } else {
    if (e.victim_remissed)
      ++counts_.polluting;
    else
      ++counts_.useless;
  }
}

void TaxonomyTracker::on_prefetch_evicted(LineAddr p) {
  const auto it = live_.find(p);
  if (it == live_.end()) return;
  classify(it->second);
  if (it->second.has_victim) {
    const auto vit = victims_.find(it->second.victim);
    if (vit != victims_.end()) {
      auto& v = vit->second;
      v.erase(std::remove(v.begin(), v.end(), p), v.end());
      if (v.empty()) victims_.erase(vit);
    }
  }
  live_.erase(it);
}

void TaxonomyTracker::finalize() {
  for (const auto& [p, e] : live_) classify(e);
  live_.clear();
  victims_.clear();
}

void TaxonomyTracker::reset() {
  live_.clear();
  victims_.clear();
  counts_ = TaxonomyCounts{};
}

}  // namespace ppf::sim
