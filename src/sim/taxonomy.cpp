#include "sim/taxonomy.hpp"

#include <algorithm>

namespace ppf::sim {

void TaxonomyTracker::on_prefetch_fill(LineAddr p,
                                       std::optional<LineAddr> victim,
                                       bool victim_was_live) {
  // A racing refill of a line already tracked keeps the original entry.
  if (live_.find(p) != nullptr) return;
  Pending e;
  e.prefetched = p;
  if (victim.has_value() && victim_was_live) {
    e.victim = *victim;
    e.has_victim = true;
    victims_.get_or_insert(*victim).push_back(p);
  }
  live_.insert_if_absent(p, e);
}

void TaxonomyTracker::on_demand_miss(LineAddr line) {
  const std::vector<LineAddr>* chargeable = victims_.find(line);
  if (chargeable == nullptr) return;
  // The displaced line came back as a demand miss: every prefetch that
  // displaced it (still in flight) is chargeable with that miss.
  for (LineAddr p : *chargeable) {
    if (Pending* e = live_.find(p)) e->victim_remissed = true;
  }
  victims_.erase(line);
}

void TaxonomyTracker::on_prefetch_used(LineAddr p) {
  if (Pending* e = live_.find(p)) e->used = true;
}

void TaxonomyTracker::classify(const Pending& e) {
  if (e.used) {
    if (e.victim_remissed)
      ++counts_.useful_polluting;
    else
      ++counts_.useful;
  } else {
    if (e.victim_remissed)
      ++counts_.polluting;
    else
      ++counts_.useless;
  }
}

void TaxonomyTracker::on_prefetch_evicted(LineAddr p) {
  const Pending* e = live_.find(p);
  if (e == nullptr) return;
  classify(*e);
  if (e->has_victim) {
    if (std::vector<LineAddr>* v = victims_.find(e->victim)) {
      v->erase(std::remove(v->begin(), v->end(), p), v->end());
      if (v->empty()) victims_.erase(e->victim);
    }
  }
  live_.erase(p);
}

void TaxonomyTracker::finalize() {
  live_.for_each([this](LineAddr, const Pending& e) { classify(e); });
  live_.clear();
  victims_.clear();
}

void TaxonomyTracker::reset() {
  live_.clear();
  victims_.clear();
  counts_ = TaxonomyCounts{};
}

}  // namespace ppf::sim
