// ppf:hot
//
// Batched stage-kernel implementation of the occupancy timing model.
//
// BatchedCore is the engine=batched counterpart of core::OooCore
// (engine=reference). It simulates the *identical* machine — the same
// per-cycle stage order (MSHR/fill retire, cache-probe issue,
// fetch/dispatch, hierarchy end-of-cycle), the same RNG draw sequence,
// the same stall-attribution precedence, the same mid-cycle pause point
// at the warmup boundary — and is required to produce byte-identical
// SimResult and obs signatures (enforced by the
// diff.batched_vs_reference oracle across the config lattice).
//
// What it restructures is the *code*, not the model:
//
//   * Decode reads straight off the MaterializedTrace SoA columns
//     (pc/kind/addr/target/flags) through raw pointers, killing the
//     per-batch gather() into AoS TraceRecords and the per-record field
//     unpacking the reference engine pays. Non-arena sources fall back
//     to a kFetchBatch SoA staging window filled via next_batch, so the
//     inner loop is one shape either way.
//   * The memory system is held as a concrete sim::MemoryHierarchy
//     (final), so every begin_cycle/try_reserve_port/demand_access/
//     fetch/end_cycle call devirtualizes and the small ones inline.
//     ppf_lint rule hot-loop-no-virtual keeps it that way.
//   * The pending-memory queues are flat power-of-two rings instead of
//     std::deque (their depth is bounded by the ROB).
//   * Each stage kernel feeds the core.stage.* accounting: exact record
//     counts (mirrored by the reference engine so signatures agree) and
//     sampled wall-clock ns (batched only, telemetry only).
//
// Layering note: this lives in sim/, not core/, precisely because it
// names MemoryHierarchy. The core/ interfaces stay memory-agnostic.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "core/branch_predictor.hpp"
#include "core/btb.hpp"
#include "core/engine.hpp"
#include "sim/memory_hierarchy.hpp"
#include "workload/materialized.hpp"
#include "workload/trace.hpp"

namespace ppf::sim {

class BatchedCore final : public core::CoreEngine {
 public:
  BatchedCore(core::CoreConfig cfg, MemoryHierarchy& mem);
  /// Rebinding copy: duplicate `other` (typically paused at the warmup
  /// boundary) against a different hierarchy and trace. The caller
  /// positions `trace` at the same record offset as other's trace.
  BatchedCore(const BatchedCore& other, MemoryHierarchy& mem,
              workload::TraceSource& trace);

  void bind(workload::TraceSource& trace) override;
  void run_until_dispatched(std::uint64_t target) override;
  void begin_window() override;
  core::CoreResult finish(std::uint64_t dispatch_limit) override;
  [[nodiscard]] std::uint64_t dispatched() const override {
    return dispatched_;
  }
  /// Clones only onto another MemoryHierarchy (returns nullptr for any
  /// other DataMemory/InstMemory, and when dmem/imem are not the same
  /// hierarchy object) — the caller then falls back to the cold path.
  [[nodiscard]] std::unique_ptr<core::CoreEngine> clone_rebound(
      core::DataMemory& dmem, core::InstMemory& imem,
      workload::TraceSource& trace) const override;
  void register_obs(obs::MetricRegistry& reg) const override;
  void register_checks(check::CheckRegistry& reg) const override;

 private:
  struct RobEntry {
    Cycle done = 0;
    bool is_mem = false;
    bool issued = true;  ///< false while waiting in a pending-issue ring
  };

  struct PendingMem {
    std::uint64_t seq = 0;
    Pc pc = 0;
    Addr addr = 0;
    bool is_store = false;
  };

  /// Flat FIFO ring for pending memory ops. Storage is the ROB ring
  /// rounded to a power of two, so occupancy (bounded by rob_count_) can
  /// never overrun and the index is a mask. head==tail means empty.
  struct PendingRing {
    std::vector<PendingMem> slots;
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    std::uint64_t mask = 0;

    [[nodiscard]] bool empty() const { return head == tail; }
    [[nodiscard]] std::uint64_t size() const { return tail - head; }
    [[nodiscard]] const PendingMem& front() const {
      return slots[head & mask];
    }
    void push(const PendingMem& p) { slots[tail++ & mask] = p; }
    void pop() { ++head; }
  };

  /// Timed cycles are 1-in-kTimingSample; the measured ns are scaled by
  /// the sample period, so the stage ns fields are whole-run estimates.
  static constexpr std::uint64_t kTimingSample = 256;

  void do_issue(Cycle now, const PendingMem& p, bool serial);
  [[nodiscard]] bool rob_full() const {
    return rob_count_ == cfg_.rob_entries;
  }
  RobEntry& rob_at(std::uint64_t seq) { return rob_[seq & rob_mask_]; }
  [[nodiscard]] const RobEntry& rob_at(std::uint64_t seq) const {
    return rob_[seq & rob_mask_];
  }
  std::uint64_t alloc_rob(bool is_mem);
  void retire(Cycle now);
  void issue_pending(Cycle now);

  // Decode-window plumbing: view_ points either at the shared arena's
  // SoA columns (arena mode; idx_ is the absolute record index) or at
  // the staging window (stream mode; idx_ in [0, win_end_)).
  [[nodiscard]] bool have_rec() const { return idx_ < win_end_; }
  void refill_stream();
  void advance();
  /// Arena mode: publish idx_ back into the cursor so a paused engine's
  /// trace position is observable (snapshots clone the cursor at pos()).
  void sync_cursor();

  bool cycle(std::uint64_t limit);
  void fast_forward_stall();
  void copy_run_state(const BatchedCore& other);

  core::CoreConfig cfg_;
  MemoryHierarchy& mem_;
  core::BimodalPredictor bp_;
  core::Btb btb_;
  Xorshift rng_;
  unsigned line_shift_ = 0;

  std::uint64_t rob_mask_ = 0;
  std::vector<RobEntry> rob_;
  std::uint64_t rob_head_seq_ = 0;
  std::uint64_t rob_next_seq_ = 0;
  unsigned rob_count_ = 0;
  unsigned lsq_count_ = 0;
  PendingRing pending_mem_;
  PendingRing pending_serial_;
  Cycle serial_chain_ready_ = 0;

  Cycle last_load_done_ = 0;
  bool last_load_known_ = true;

  // --- per-run state (reset by bind) ---------------------------------
  workload::TraceSource* trace_ = nullptr;
  workload::TraceCursor* cursor_ = nullptr;  ///< non-null in arena mode
  std::shared_ptr<const workload::MaterializedTrace> arena_;
  workload::MaterializedTrace::SoaView view_;
  std::size_t idx_ = 0;
  std::size_t win_end_ = 0;
  bool arena_mode_ = false;
  bool stream_eof_ = true;
  // Stream-mode staging window (SoA transpose of next_batch output).
  std::array<std::uint64_t, core::kFetchBatch> spc_{};
  std::array<std::uint8_t, core::kFetchBatch> skind_{};
  std::array<std::uint64_t, core::kFetchBatch> saddr_{};
  std::array<std::uint64_t, core::kFetchBatch> starget_{};
  std::array<std::uint8_t, core::kFetchBatch> sflags_{};

  std::uint64_t dispatched_ = 0;
  std::uint64_t pause_at_ = 0;  ///< 0 = no pause requested
  core::CoreResult res_;
  core::CoreResult window_snapshot_;
  Cycle window_start_ = 0;
  Cycle now_ = 0;
  Cycle cycle_limit_ = 0;  ///< livelock guard, recomputed per segment
  Cycle fetch_ready_ = 0;
  Cycle redirect_until_ = 0;
  Addr cur_fetch_line_ = std::numeric_limits<Addr>::max();
  std::uint64_t timing_tick_ = 0;

  // Mid-cycle pause state (valid while mid_cycle_).
  bool mid_cycle_ = false;
  bool cycle_trace_active_ = false;
  bool was_rob_full_ = false;
  bool fetch_stalled_ = false;
  bool lsq_blocked_ = false;
  unsigned slots_ = 0;
};

/// Engine factory honouring cfg.engine/cfg.core_model: the dataflow
/// model has a single implementation; the occupancy model dispatches to
/// BatchedCore (engine=batched) or core::OooCore (engine=reference).
[[nodiscard]] std::unique_ptr<core::CoreEngine> make_sim_engine(
    const SimConfig& cfg, MemoryHierarchy& mem);

}  // namespace ppf::sim
