// Prefetch taxonomy after Srinivasan, Davidson & Tyson, "A Prefetch
// Taxonomy" [17] — the richer classification the paper cites and then
// deliberately simplifies to good/bad (Section 3: tracking the displaced
// line and reference order "requires many additional bits").
//
// This module implements the full classification as an *analysis* tool
// (the simulator can afford the bookkeeping hardware cannot), so the
// claim behind the paper's simplification can itself be measured:
//
//   useful            used before eviction, victim never missed again
//   useful-polluting  used, but the displaced line missed again first
//   polluting         never used AND the displaced line missed again
//   useless           never used, displaced line never missed again
//
// The paper's "good" = useful + useful-polluting; "bad" = polluting +
// useless. bench_taxonomy reports how much pollution hides inside each.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"

namespace ppf::sim {

struct TaxonomyCounts {
  std::uint64_t useful = 0;
  std::uint64_t useful_polluting = 0;
  std::uint64_t polluting = 0;
  std::uint64_t useless = 0;

  [[nodiscard]] std::uint64_t total() const {
    return useful + useful_polluting + polluting + useless;
  }
  /// The paper's two-way view of the same population.
  [[nodiscard]] std::uint64_t good() const {
    return useful + useful_polluting;
  }
  [[nodiscard]] std::uint64_t bad() const { return polluting + useless; }
};

class TaxonomyTracker {
 public:
  /// A prefetch filled line `p`, displacing `victim` (nullopt when it
  /// filled an invalid way). Only live victims — lines that had been
  /// referenced — can make a prefetch polluting.
  void on_prefetch_fill(LineAddr p, std::optional<LineAddr> victim,
                        bool victim_was_live);

  /// Demand miss observed at the L1.
  void on_demand_miss(LineAddr line);

  /// First demand use of a prefetched line.
  void on_prefetch_used(LineAddr p);

  /// The prefetched line left the L1; classify it.
  void on_prefetch_evicted(LineAddr p);

  /// Classify everything still being tracked (end of run).
  void finalize();

  [[nodiscard]] const TaxonomyCounts& counts() const { return counts_; }
  void reset();

 private:
  struct Pending {
    LineAddr prefetched = 0;
    LineAddr victim = 0;
    bool has_victim = false;
    bool used = false;
    bool victim_remissed = false;
  };

  void classify(const Pending& e);

  /// Prefetched line -> tracking entry. Flat open-addressed maps: both
  /// tables churn on the demand-miss path, and the classification only
  /// ever folds order-independent counter sums, so unordered_map's node
  /// allocations bought nothing (see common/flat_map.hpp).
  FlatHashMap<Pending> live_;
  /// Victim line -> prefetched lines whose fill displaced it.
  FlatHashMap<std::vector<LineAddr>> victims_;
  TaxonomyCounts counts_;
};

}  // namespace ppf::sim
