// ppf:hot
#include "sim/batched_core.hpp"

#include <chrono>
#include <limits>

#include "check/check.hpp"
#include "common/assert.hpp"
#include "common/bits.hpp"
#include "sim/sim_config.hpp"

namespace ppf::sim {
namespace {

constexpr Cycle kNotDone = std::numeric_limits<Cycle>::max();

unsigned shift_of(unsigned bytes) {
  unsigned s = 0;
  for (unsigned v = bytes; v > 1; v >>= 1) ++s;
  return s;
}

using TimePoint = std::chrono::steady_clock::time_point;

double ns_between(TimePoint a, TimePoint b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

}  // namespace

BatchedCore::BatchedCore(core::CoreConfig cfg, MemoryHierarchy& mem)
    : cfg_(cfg),
      mem_(mem),
      bp_(cfg.bimodal),
      btb_(cfg.btb),
      rng_(cfg.seed),
      line_shift_(shift_of(cfg.ifetch_line_bytes)) {
  PPF_CHECK(cfg_.width >= 1);
  PPF_CHECK(cfg_.rob_entries >= cfg_.width);
  PPF_CHECK(cfg_.lsq_entries >= 1);
  // Same ring sizing as the reference engine: round up to a power of two
  // so the index is a mask; capacity checks still use cfg_.rob_entries.
  std::uint64_t ring = 1;
  while (ring < cfg_.rob_entries) ring <<= 1;
  rob_mask_ = ring - 1;
  rob_.resize(ring);
  // Pending occupancy is bounded by live ROB entries, so the ROB ring
  // size (already power-of-two) can never overflow these.
  pending_mem_.slots.resize(ring);
  pending_mem_.mask = ring - 1;
  pending_serial_.slots.resize(ring);
  pending_serial_.mask = ring - 1;
}

BatchedCore::BatchedCore(const BatchedCore& other, MemoryHierarchy& mem,
                         workload::TraceSource& trace)
    : cfg_(other.cfg_),
      mem_(mem),
      bp_(other.bp_),
      btb_(other.btb_),
      rng_(other.rng_),
      line_shift_(other.line_shift_),
      rob_mask_(other.rob_mask_) {
  copy_run_state(other);
  trace_ = &trace;
  if (arena_mode_) {
    cursor_ = dynamic_cast<workload::TraceCursor*>(&trace);
    PPF_CHECK_MSG(cursor_ != nullptr,
                  "arena-bound batched clone requires a TraceCursor");
    arena_ = cursor_->arena();
    view_ = arena_->view();
    PPF_CHECK_MSG(cursor_->pos() == idx_, "clone cursor mispositioned");
    PPF_CHECK(win_end_ <= arena_->size());
  } else {
    // Stream mode: the staging window was copied by copy_run_state; the
    // pointers must target *our* copy, not other's.
    cursor_ = nullptr;
    arena_.reset();
    view_ = workload::MaterializedTrace::SoaView{
        spc_.data(), skind_.data(), saddr_.data(), starget_.data(),
        sflags_.data()};
  }
}

void BatchedCore::copy_run_state(const BatchedCore& o) {
  rob_ = o.rob_;
  rob_head_seq_ = o.rob_head_seq_;
  rob_next_seq_ = o.rob_next_seq_;
  rob_count_ = o.rob_count_;
  lsq_count_ = o.lsq_count_;
  pending_mem_ = o.pending_mem_;
  pending_serial_ = o.pending_serial_;
  serial_chain_ready_ = o.serial_chain_ready_;
  last_load_done_ = o.last_load_done_;
  last_load_known_ = o.last_load_known_;
  arena_ = o.arena_;
  idx_ = o.idx_;
  win_end_ = o.win_end_;
  arena_mode_ = o.arena_mode_;
  stream_eof_ = o.stream_eof_;
  spc_ = o.spc_;
  skind_ = o.skind_;
  saddr_ = o.saddr_;
  starget_ = o.starget_;
  sflags_ = o.sflags_;
  dispatched_ = o.dispatched_;
  pause_at_ = o.pause_at_;
  res_ = o.res_;
  window_snapshot_ = o.window_snapshot_;
  window_start_ = o.window_start_;
  now_ = o.now_;
  cycle_limit_ = o.cycle_limit_;
  fetch_ready_ = o.fetch_ready_;
  redirect_until_ = o.redirect_until_;
  cur_fetch_line_ = o.cur_fetch_line_;
  timing_tick_ = o.timing_tick_;
  mid_cycle_ = o.mid_cycle_;
  cycle_trace_active_ = o.cycle_trace_active_;
  was_rob_full_ = o.was_rob_full_;
  fetch_stalled_ = o.fetch_stalled_;
  lsq_blocked_ = o.lsq_blocked_;
  slots_ = o.slots_;
}

std::unique_ptr<core::CoreEngine> BatchedCore::clone_rebound(
    core::DataMemory& dmem, core::InstMemory& imem,
    workload::TraceSource& trace) const {
  // The batched engine only drives a concrete MemoryHierarchy (that is
  // the whole point); nullptr sends the caller down the cold path.
  auto* hier = dynamic_cast<MemoryHierarchy*>(&dmem);
  if (hier == nullptr || hier != dynamic_cast<MemoryHierarchy*>(&imem)) {
    return nullptr;
  }
  return std::unique_ptr<core::CoreEngine>(new BatchedCore(*this, *hier, trace));
}

std::uint64_t BatchedCore::alloc_rob(bool is_mem) {
  PPF_ASSERT(!rob_full());
  const std::uint64_t seq = rob_next_seq_++;
  rob_at(seq) = RobEntry{kNotDone, is_mem, true};
  ++rob_count_;
  if (is_mem) ++lsq_count_;
  return seq;
}

void BatchedCore::retire(Cycle now) {
  unsigned n = 0;
  while (rob_count_ > 0 && n < cfg_.width) {
    RobEntry& head = rob_at(rob_head_seq_);
    if (!head.issued || head.done > now) break;
    if (head.is_mem) {
      PPF_ASSERT(lsq_count_ > 0);
      --lsq_count_;
    }
    ++rob_head_seq_;
    --rob_count_;
    ++n;
  }
  res_.stages.retire_records += n;
}

void BatchedCore::do_issue(Cycle now, const PendingMem& p, bool serial) {
  ++res_.stages.probe_records;
  const Cycle completion = mem_.demand_access(now, p.pc, p.addr, p.is_store);
  RobEntry& e = rob_at(p.seq);
  e.issued = true;
  e.done = p.is_store ? now + 1 : completion;
  if (!p.is_store) {
    last_load_done_ = e.done;
    last_load_known_ = true;
    if (serial) serial_chain_ready_ = completion;
  }
}

void BatchedCore::issue_pending(Cycle now) {
  // Serial (pointer-chase) accesses go first: the chain head has been
  // waiting longest and everything behind it is address-dependent.
  while (!pending_serial_.empty() && serial_chain_ready_ <= now &&
         mem_.try_reserve_port(now)) {
    const PendingMem p = pending_serial_.front();
    pending_serial_.pop();
    do_issue(now, p, /*serial=*/true);
  }
  while (!pending_mem_.empty() && mem_.try_reserve_port(now)) {
    const PendingMem p = pending_mem_.front();
    pending_mem_.pop();
    do_issue(now, p, /*serial=*/false);
  }
}

// ppf:cold — stream-mode refill goes through the virtual TraceSource;
// it runs once per kFetchBatch records, never per instruction.
void BatchedCore::refill_stream() {
  std::array<workload::TraceRecord, core::kFetchBatch> buf;
  const std::size_t got =
      stream_eof_ ? 0 : trace_->next_batch(buf.data(), core::kFetchBatch);
  for (std::size_t i = 0; i < got; ++i) {
    const workload::TraceRecord& r = buf[i];
    spc_[i] = r.pc;
    skind_[i] = static_cast<std::uint8_t>(r.kind);
    saddr_[i] = r.addr;
    starget_[i] = r.target;
    sflags_[i] =
        static_cast<std::uint8_t>((r.taken ? 1u : 0u) | (r.serial ? 2u : 0u));
  }
  idx_ = 0;
  win_end_ = got;
  if (got < core::kFetchBatch) stream_eof_ = true;
}
// ppf:hot

void BatchedCore::advance() {
  ++idx_;
  if (!arena_mode_ && idx_ >= win_end_ && !stream_eof_) refill_stream();
}

void BatchedCore::sync_cursor() {
  if (cursor_ != nullptr) cursor_->seek(idx_);
}

void BatchedCore::bind(workload::TraceSource& trace) {
  trace_ = &trace;
  cursor_ = dynamic_cast<workload::TraceCursor*>(&trace);
  arena_mode_ = cursor_ != nullptr;
  if (arena_mode_) {
    // Decode straight off the shared arena: idx_ is the absolute record
    // index; the cursor is only touched again at pause/finish sync.
    arena_ = cursor_->arena();
    view_ = arena_->view();
    idx_ = cursor_->pos();
    win_end_ = arena_->size();
    stream_eof_ = true;  // unused in arena mode
  } else {
    arena_.reset();
    stream_eof_ = false;
    view_ = workload::MaterializedTrace::SoaView{
        spc_.data(), skind_.data(), saddr_.data(), starget_.data(),
        sflags_.data()};
    refill_stream();
  }
  dispatched_ = 0;
  pause_at_ = 0;
  res_ = core::CoreResult{};
  window_snapshot_ = core::CoreResult{};
  window_start_ = 0;
  now_ = 0;
  cycle_limit_ = 0;
  fetch_ready_ = 0;
  redirect_until_ = 0;
  cur_fetch_line_ = std::numeric_limits<Addr>::max();
  timing_tick_ = 0;
  mid_cycle_ = false;
}

void BatchedCore::begin_window() {
  window_snapshot_ = res_;
  window_start_ = now_;
}

void BatchedCore::fast_forward_stall() {
  // Mirrors OooCore::fast_forward_stall exactly — see the commentary
  // there. Provably-idle cycles jump straight to the next event with
  // bulk stall attribution; result-identical to stepping.
  if (!mem_.quiescent() || !pending_mem_.empty()) return;
  if (!pending_serial_.empty() && serial_chain_ready_ <= now_) return;
  const bool head_issued = rob_count_ > 0 && rob_at(rob_head_seq_).issued;
  if (head_issued && rob_at(rob_head_seq_).done <= now_) return;

  const bool fetch_blocked = now_ < fetch_ready_ || now_ < redirect_until_;
  bool lsq_blocking = false;
  if (cycle_trace_active_ && !fetch_blocked && !rob_full()) {
    const auto kind = static_cast<workload::InstKind>(view_.kind[idx_]);
    const bool is_mem =
        kind == workload::InstKind::Load || kind == workload::InstKind::Store;
    if (!is_mem || lsq_count_ < cfg_.lsq_entries) return;
    if ((view_.pc[idx_] >> line_shift_) != cur_fetch_line_) return;
    lsq_blocking = true;
  }

  Cycle t = kNotDone;
  if (head_issued) t = rob_at(rob_head_seq_).done;
  if (!pending_serial_.empty() && serial_chain_ready_ < t) {
    t = serial_chain_ready_;
  }
  if (fetch_blocked) {
    const Cycle unblock =
        fetch_ready_ > redirect_until_ ? fetch_ready_ : redirect_until_;
    if (unblock < t) t = unblock;
  }
  if (t == kNotDone || t <= now_) return;
  if (t > cycle_limit_) t = cycle_limit_;

  const Cycle skipped = t - now_;
  if (cycle_trace_active_) {
    if (rob_full())
      res_.rob_full_stall_cycles += skipped;
    else if (lsq_blocking)
      res_.lsq_full_stall_cycles += skipped;
    else if (fetch_blocked)
      res_.fetch_stall_cycles += skipped;
  }
  now_ = t;
}

bool BatchedCore::cycle(std::uint64_t limit) {
  heartbeat_tick(dispatched_);
  // Stage timing is sampled 1-in-kTimingSample cycles and scaled up;
  // resumed (mid-cycle) entries are never timed. Timing never touches
  // simulated state, so the ns estimates cannot perturb determinism.
  bool timed = false;
  TimePoint t0{};
  if (!mid_cycle_) {
    cycle_trace_active_ = have_rec() && dispatched_ < limit;
    if (!cycle_trace_active_ && rob_count_ == 0 && pending_mem_.empty() &&
        pending_serial_.empty())
      return false;
    PPF_CHECK_MSG(now_ < cycle_limit_, "timing model livelock");
    fast_forward_stall();

    timed = (timing_tick_++ & (kTimingSample - 1)) == 0;
    if (timed) t0 = std::chrono::steady_clock::now();
    mem_.begin_cycle(now_);
    retire(now_);
    if (timed) {
      const TimePoint t1 = std::chrono::steady_clock::now();
      res_.stages.retire_ns += ns_between(t0, t1) * kTimingSample;
      t0 = t1;
    }
    issue_pending(now_);
    if (timed) {
      const TimePoint t1 = std::chrono::steady_clock::now();
      res_.stages.probe_ns += ns_between(t0, t1) * kTimingSample;
      t0 = t1;
    }

    was_rob_full_ = rob_full();
    fetch_stalled_ = now_ < fetch_ready_ || now_ < redirect_until_;
    slots_ = cfg_.width;
    lsq_blocked_ = false;
  } else {
    mid_cycle_ = false;
  }

  while (slots_ > 0 && idx_ < win_end_ && dispatched_ < limit) {
    if (now_ < fetch_ready_ || now_ < redirect_until_) break;
    if (rob_full()) break;
    const Pc pc = view_.pc[idx_];

    // Instruction fetch: crossing into a new I-line probes the L1I.
    const Addr line = pc >> line_shift_;
    if (line != cur_fetch_line_) {
      const Cycle ready = mem_.fetch(now_, pc);
      cur_fetch_line_ = line;
      if (ready > now_) {
        fetch_ready_ = ready;
        break;
      }
    }

    const auto kind = static_cast<workload::InstKind>(view_.kind[idx_]);
    const bool is_mem =
        kind == workload::InstKind::Load || kind == workload::InstKind::Store;
    if (is_mem && lsq_count_ >= cfg_.lsq_entries) {
      lsq_blocked_ = true;
      break;
    }

    const std::uint64_t seq = alloc_rob(is_mem);
    RobEntry& e = rob_at(seq);
    Cycle done = now_ + cfg_.exec_latency;
    // Statistical dataflow: consume the youngest load with prob p.
    if (lsq_count_ > (is_mem ? 1U : 0U) &&
        rng_.chance(cfg_.dep_on_load_prob)) {
      if (last_load_known_ && last_load_done_ > done) done = last_load_done_;
    }

    switch (kind) {
      case workload::InstKind::Op:
        e.done = done;
        break;
      case workload::InstKind::SwPrefetch:
        ++res_.sw_prefetches;
        mem_.software_prefetch(now_, pc, view_.addr[idx_]);
        e.done = done;
        break;
      case workload::InstKind::Branch: {
        ++res_.branches;
        const bool taken = (view_.flags[idx_] & 1u) != 0;
        const Addr target = view_.target[idx_];
        const bool pred_taken = bp_.predict(pc);
        const auto pred_target = btb_.lookup(pc);
        bool correct = pred_taken == taken;
        if (correct && taken) {
          correct = pred_target.has_value() && *pred_target == target;
        }
        bp_.update(pc, taken);
        if (taken) btb_.update(pc, target);
        bp_.note_outcome(correct);
        e.done = done;
        if (!correct) {
          ++res_.mispredictions;
          redirect_until_ = done + cfg_.mispredict_penalty;
        }
        if (taken) {
          // Control transfer: the next line fetched is the target's.
          cur_fetch_line_ = std::numeric_limits<Addr>::max();
        }
        break;
      }
      case workload::InstKind::Load:
      case workload::InstKind::Store: {
        const bool is_store = kind == workload::InstKind::Store;
        if (is_store)
          ++res_.stores;
        else
          ++res_.loads;
        const PendingMem pm{seq, pc, view_.addr[idx_], is_store};
        if ((view_.flags[idx_] & 2u) != 0) {
          // Pointer chase: issue in chain order, gated on the previous
          // serial load's data.
          if (pending_serial_.empty() && serial_chain_ready_ <= now_ &&
              mem_.try_reserve_port(now_)) {
            do_issue(now_, pm, /*serial=*/true);
          } else {
            e.issued = false;
            e.done = kNotDone;
            pending_serial_.push(pm);
            if (!is_store) last_load_known_ = false;
          }
        } else if (mem_.try_reserve_port(now_)) {
          do_issue(now_, pm, /*serial=*/false);
        } else {
          e.issued = false;
          e.done = kNotDone;
          pending_mem_.push(pm);
          if (!is_store) last_load_known_ = false;
        }
        break;
      }
    }

    ++dispatched_;
    ++res_.instructions;
    ++res_.stages.fetch_records;
    --slots_;
    advance();
    if (dispatched_ == pause_at_) {
      // Pause exactly at the boundary, before finishing the cycle; the
      // resumed (or cloned) core re-enters here with mid_cycle_ set.
      mid_cycle_ = true;
      return true;
    }
    if (now_ < redirect_until_) break;  // stop after a mispredicted branch
  }
  if (timed) {
    const TimePoint t1 = std::chrono::steady_clock::now();
    res_.stages.fetch_ns += ns_between(t0, t1) * kTimingSample;
    t0 = t1;
  }

  if (cycle_trace_active_ && slots_ == cfg_.width) {
    // Nothing dispatched this cycle: attribute the stall.
    if (was_rob_full_)
      ++res_.rob_full_stall_cycles;
    else if (lsq_blocked_)
      ++res_.lsq_full_stall_cycles;
    else if (fetch_stalled_)
      ++res_.fetch_stall_cycles;
  }

  ++res_.stages.memsys_records;
  mem_.end_cycle(now_);
  if (timed) {
    res_.stages.memsys_ns +=
        ns_between(t0, std::chrono::steady_clock::now()) * kTimingSample;
  }
  ++now_;
  return true;
}

void BatchedCore::run_until_dispatched(std::uint64_t target) {
  PPF_CHECK(trace_ != nullptr);
  if (dispatched_ >= target) return;
  // Livelock guard: the model must always make forward progress.
  cycle_limit_ = now_ + (target - dispatched_ + 1024) * 512 + 10'000'000ULL;
  pause_at_ = target;
  while (!mid_cycle_ && cycle(target)) {
  }
  pause_at_ = 0;
  // Publish the pause position: snapshot/clone machinery reads the
  // cursor (arena mode consumes records without advancing it).
  sync_cursor();
}

core::CoreResult BatchedCore::finish(std::uint64_t dispatch_limit) {
  PPF_CHECK(trace_ != nullptr);
  PPF_CHECK(dispatch_limit >= dispatched_);
  cycle_limit_ =
      now_ + (dispatch_limit - dispatched_ + 1024) * 512 + 10'000'000ULL;
  pause_at_ = 0;
  while (cycle(dispatch_limit)) {
  }
  sync_cursor();
  core::CoreResult out = res_;
  core::subtract_window(out, window_snapshot_);
  out.cycles = now_ - window_start_;
  return out;
}

void BatchedCore::register_obs(obs::MetricRegistry& reg) const {
  register_core_counters(reg, res_);
}

void BatchedCore::register_checks(check::CheckRegistry& reg) const {
  // Same structural invariants (and invariant IDs) as the reference
  // engine — docs/CHECKING.md documents them once for both.
  reg.add("core", [this](check::CheckContext& ctx) {
    const bool ring_ok = rob_next_seq_ - rob_head_seq_ == rob_count_ &&
                         rob_count_ <= cfg_.rob_entries &&
                         rob_.size() == rob_mask_ + 1 && is_pow2(rob_.size());
    ctx.require(ring_ok, "core.rob_ring", [&] {
      return "head=" + std::to_string(rob_head_seq_) + " next=" +
             std::to_string(rob_next_seq_) + " count=" +
             std::to_string(rob_count_) + " capacity=" +
             std::to_string(cfg_.rob_entries) + " storage=" +
             std::to_string(rob_.size());
    });
    ctx.require(lsq_count_ <= cfg_.lsq_entries && lsq_count_ <= rob_count_,
                "core.lsq_bound", [&] {
                  return "lsq=" + std::to_string(lsq_count_) + " capacity=" +
                         std::to_string(cfg_.lsq_entries) + " rob=" +
                         std::to_string(rob_count_);
                });
    // Every pending op occupies a not-yet-issued ROB entry, and both
    // rings hold entries in strict age (allocation seq) order.
    const auto ordered = [&](const PendingRing& q) {
      std::uint64_t prev = 0;
      bool first = true;
      for (std::uint64_t i = q.head; i != q.tail; ++i) {
        const PendingMem& p = q.slots[i & q.mask];
        if (!first && p.seq <= prev) return false;
        if (p.seq < rob_head_seq_ || p.seq >= rob_next_seq_) return false;
        prev = p.seq;
        first = false;
      }
      return true;
    };
    ctx.require(ordered(pending_mem_) && ordered(pending_serial_) &&
                    pending_mem_.size() + pending_serial_.size() <= rob_count_,
                "core.lsq_age_order", [&] {
                  return "pending_mem=" + std::to_string(pending_mem_.size()) +
                         " pending_serial=" +
                         std::to_string(pending_serial_.size()) + " rob=" +
                         std::to_string(rob_count_);
                });
    const bool window_ok =
        arena_mode_ ? (arena_ != nullptr && win_end_ == arena_->size() &&
                       idx_ <= win_end_)
                    : (idx_ <= win_end_ && win_end_ <= core::kFetchBatch);
    ctx.require(window_ok, "core.fetch_buffer", [&] {
      return "idx=" + std::to_string(idx_) + " end=" +
             std::to_string(win_end_) + " arena=" +
             (arena_mode_ ? std::to_string(arena_->size()) : "stream");
    });
  });
}

std::unique_ptr<core::CoreEngine> make_sim_engine(const SimConfig& cfg,
                                                  MemoryHierarchy& mem) {
  if (cfg.core_model == CoreModel::Dataflow) {
    return core::make_engine(core::EngineKind::Dataflow, cfg.core, mem, mem);
  }
  if (cfg.engine == EngineMode::Batched) {
    return std::make_unique<BatchedCore>(cfg.core, mem);
  }
  return core::make_engine(core::EngineKind::Occupancy, cfg.core, mem, mem);
}

}  // namespace ppf::sim
