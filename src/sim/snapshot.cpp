#include "sim/snapshot.hpp"

#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "sim/batched_core.hpp"

namespace ppf::sim {

namespace {

void key_cache(std::ostringstream& os, const mem::CacheConfig& c) {
  os << c.size_bytes << '/' << c.line_bytes << '/' << c.associativity << '/'
     << c.latency << '/' << c.ports << '/'
     << static_cast<int>(c.replacement);
}

}  // namespace

// Note: cfg.obs, cfg.check, and cfg.diff_fail_at are deliberately NOT
// part of the key. Observability never shapes machine state (the
// recorder only reads counters), invariant checks only read component
// state, and the diff_fail_at fault hook throws before any simulation —
// so a snapshot warmed without any of them is valid for runs with any
// such setting; each resumed run attaches its own fresh
// Recorder/Checker after cloning, and a fault-injected job fails at the
// run_from_snapshot entry without touching the shared snapshot.
std::string warmup_key(const SimConfig& cfg) {
  std::ostringstream os;
  os << to_string(cfg.core_model) << '|' << to_string(cfg.engine) << '|'
     << cfg.core.width << ','
     << cfg.core.rob_entries << ',' << cfg.core.lsq_entries << ','
     << cfg.core.exec_latency << ',' << cfg.core.mispredict_penalty << ','
     << cfg.core.inst_bytes << ',' << cfg.core.ifetch_line_bytes << ','
     << cfg.core.dep_on_load_prob << ',' << cfg.core.seed << ','
     << cfg.core.bimodal.entries << ',' << cfg.core.bimodal.counter_bits
     << ',' << cfg.core.bimodal.inst_bytes << ',' << cfg.core.btb.sets << ','
     << cfg.core.btb.ways << ',' << cfg.core.btb.inst_bytes << '|';
  key_cache(os, cfg.l1d);
  os << '|';
  key_cache(os, cfg.l1i);
  os << '|';
  key_cache(os, cfg.l2);
  os << '|' << cfg.bus.width_bytes << ',' << cfg.bus.cycles_per_beat << '|'
     << cfg.dram.latency << '|' << cfg.prefetch_queue_entries << ','
     << cfg.mshr_entries << ',' << cfg.victim_cache_entries << ','
     << cfg.prefetch_to_l2 << ',' << cfg.use_prefetch_buffer << ','
     << cfg.prefetch_buffer_entries << '|';
  // Prefetcher list, in order (order shapes warm state). Registry keys
  // never contain ',' so the joined form is unambiguous.
  for (std::size_t i = 0; i < cfg.prefetchers.size(); ++i) {
    if (i > 0) os << ',';
    os << cfg.prefetchers[i];
  }
  os << ';' << cfg.nsp_degree << ',' << cfg.enable_sw_prefetch << ','
     << cfg.pmp.region_lines << ',' << cfg.pmp.filter_entries << ','
     << cfg.pmp.accum_entries << ',' << cfg.pmp.degree_cap << '|'
     << cfg.filter << ',' << cfg.history.entries << ','
     << cfg.history.counter_bits << ','
     << static_cast<int>(cfg.history.init_value) << ','
     << static_cast<int>(cfg.history.hash) << ','
     << cfg.history.source_separated << ','
     << cfg.adaptive.accuracy_threshold << ','
     << cfg.adaptive.release_threshold << ',' << cfg.adaptive.window << ','
     << cfg.deadblock.age_multiple << ',' << cfg.perceptron.table_entries
     << ',' << cfg.perceptron.weight_bits << ',' << cfg.perceptron.theta
     << ',' << cfg.filter_recovery_entries
     << '|' << cfg.enable_taxonomy << '|' << cfg.warmup_instructions << '|'
     << cfg.seed;
  return os.str();
}

std::size_t WarmupSnapshot::arena_size() const { return arena_->size(); }

std::size_t WarmupSnapshot::estimated_bytes() const {
  // Tag/meta overhead per line plus the data arrays themselves, the
  // history table, and per-entry queue/ROB state. Deliberately a config
  // function: it must be identical for every snapshot sharing a
  // warmup_key, or cache-budget eviction order would depend on build
  // order.
  const auto cache_bytes = [](const mem::CacheConfig& c) {
    const std::size_t lines =
        c.line_bytes > 0 ? c.size_bytes / c.line_bytes : 0;
    return c.size_bytes + lines * 24;
  };
  std::size_t bytes = cache_bytes(cfg_.l1d) + cache_bytes(cfg_.l1i) +
                      cache_bytes(cfg_.l2);
  bytes += cfg_.history.entries * 8;
  bytes += cfg_.filter_recovery_entries * 16;
  bytes += cfg_.victim_cache_entries * 48;
  bytes += cfg_.prefetch_queue_entries * 32;
  bytes += (cfg_.core.rob_entries + cfg_.core.lsq_entries) * 64;
  bytes += cfg_.core.bimodal.entries + cfg_.core.btb.sets * cfg_.core.btb.ways * 16;
  bytes += 64 * 1024;  // fixed overhead: engine, maps, bookkeeping
  return bytes;
}

std::shared_ptr<const WarmupSnapshot> make_warmup_snapshot(
    const SimConfig& cfg,
    std::shared_ptr<const workload::MaterializedTrace> arena) {
  const std::uint64_t warmup =
      cfg.warmup_instructions < cfg.max_instructions ? cfg.warmup_instructions
                                                     : 0;
  if (warmup == 0 || arena == nullptr || arena->size() < warmup) {
    return nullptr;
  }

  auto snap = std::shared_ptr<WarmupSnapshot>(new WarmupSnapshot());
  snap->cfg_ = cfg;
  snap->arena_ = std::move(arena);
  snap->mem_ = std::make_unique<MemoryHierarchy>(cfg);
  snap->cursor_ = std::make_unique<workload::TraceCursor>(snap->arena_);
  snap->engine_ = make_sim_engine(cfg, *snap->mem_);
  snap->engine_->bind(*snap->cursor_);
  snap->engine_->run_until_dispatched(warmup);
  if (snap->engine_->dispatched() < warmup) return nullptr;
  snap->warmup_ = warmup;

  // Probe cloneability once up front so run_from_snapshot never throws on
  // a hierarchy whose filter/prefetchers lack clone_rebound.
  try {
    MemoryHierarchy probe(*snap->mem_);
    workload::TraceCursor probe_cursor(snap->arena_, snap->cursor_->pos());
    if (snap->engine_->clone_rebound(probe, probe, probe_cursor) == nullptr) {
      return nullptr;
    }
  } catch (const std::runtime_error&) {
    return nullptr;
  }
  return snap;
}

SimResult run_from_snapshot(const SimConfig& cfg, const WarmupSnapshot& snap) {
  maybe_inject_fault(cfg);
  PPF_CHECK_MSG(warmup_key(cfg) == warmup_key(snap.config()),
                "snapshot reused across warmup-incompatible configs");
  PPF_CHECK_MSG(cfg.warmup_instructions < cfg.max_instructions,
                "snapshot resume requires an active warmup");

  MemoryHierarchy mem(*snap.mem_);
  workload::TraceCursor cursor(snap.arena_, snap.cursor_->pos());
  const auto engine = snap.engine_->clone_rebound(mem, mem, cursor);
  PPF_CHECK(engine != nullptr);

  // Attach a fresh recorder before the stats reset so the reset doubles
  // as the obs baseline capture — the exact point the cold path samples.
  std::unique_ptr<obs::Recorder> rec;
  if (cfg.obs.enabled) {
    rec = std::make_unique<obs::Recorder>(cfg.obs);
    mem.attach_obs(*rec);
    engine->register_obs(rec->registry());
  }
  // Same for the checker: attaching before reset_stats captures the
  // conservation baseline at the identical mid-cycle point as the cold
  // path's warmup-boundary reset.
  std::unique_ptr<check::Checker> chk;
  if (cfg.check.mode != check::CheckMode::Off) {
    chk = std::make_unique<check::Checker>(cfg.check);
    mem.attach_checks(*chk);
    engine->register_checks(chk->registry());
  }
  if (cfg.obs.heartbeat_slot != nullptr) {
    engine->set_heartbeat(cfg.obs.heartbeat_slot);
  }

  // Same sequence the cold path runs at the boundary: statistics reset,
  // then the measurement window opens, then the run completes.
  mem.reset_stats();
  engine->begin_window();
  const core::CoreResult core =
      engine->finish(cfg.max_instructions + snap.warmup_);
  return collect_result(cfg, mem, core, cursor.name());
}

}  // namespace ppf::sim
