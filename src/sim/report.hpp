// Plain-text table formatting for the bench binaries, which print the
// same rows/series as the paper's figures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppf::sim {

/// Fixed-width text table: headers plus string rows, auto-sized columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Machine-readable output: RFC-4180-style CSV with a header row.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt(double v, int precision = 3);
std::string fmt_pct(double v, int precision = 1);  ///< 0.082 -> "8.2%"
std::string fmt_u64(std::uint64_t v);

/// Banner printed at the top of every bench binary.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& what);

struct SimResult;  // simulator.hpp

/// Full human-readable dump of one simulation result (used by the CLI
/// driver and the examples).
void print_result(std::ostream& os, const SimResult& r);

/// Canonical per-run result columns, shared by every machine-readable
/// output (ppf_sim csv=1, the runlab CSV/JSON sinks). One place to add a
/// metric; every sink picks it up.
const std::vector<std::string>& result_row_headers();

/// One row of `result_row_headers()` cells for `r`, formatted with the
/// fixed precisions the CSV outputs have always used.
std::vector<std::string> result_row(const SimResult& r);

/// One-row table of the canonical columns (ppf_sim's CSV output).
Table result_table(const SimResult& r);

}  // namespace ppf::sim
