#include "sim/memory_hierarchy.hpp"

#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "registry/registry.hpp"

namespace ppf::sim {

std::unique_ptr<filter::PollutionFilter> make_filter(const SimConfig& cfg,
                                                     const mem::Cache& l1) {
  registry::FilterContext ctx;
  ctx.history = cfg.history;
  ctx.adaptive = cfg.adaptive;
  ctx.deadblock = cfg.deadblock;
  ctx.perceptron = cfg.perceptron;
  ctx.inst_bytes = cfg.core.inst_bytes;
  ctx.l1 = &l1;
  return registry::make_filter(cfg.filter, ctx);
}

MemoryHierarchy::MemoryHierarchy(const SimConfig& cfg,
                                 filter::PollutionFilter* external_filter)
    : cfg_(cfg),
      l1d_(cfg.l1d, cfg.seed + 1),
      l1i_(cfg.l1i, cfg.seed + 2),
      l2_(cfg.l2, cfg.seed + 3),
      bus_(cfg.bus),
      dram_(cfg.dram),
      pq_(cfg.prefetch_queue_entries),
      mshr_(cfg.mshr_entries) {
  if (external_filter != nullptr) {
    active_filter_ = external_filter;
  } else {
    owned_filter_ = make_filter(cfg, l1d_);
    active_filter_ = owned_filter_.get();
  }
  if (cfg.use_prefetch_buffer) {
    buffer_ = std::make_unique<mem::PrefetchBuffer>(cfg.prefetch_buffer_entries);
  }
  if (cfg.victim_cache_entries > 0) {
    victim_ = std::make_unique<mem::VictimCache>(cfg.victim_cache_entries);
  }
  registry::PrefetcherContext pctx;
  pctx.l1d = &l1d_;
  pctx.l2 = &l2_;
  pctx.nsp_degree = cfg.nsp_degree;
  pctx.pmp = cfg.pmp;
  // List order is generation order: candidates reach the filter and the
  // queue in this order every run (part of the determinism contract).
  for (const std::string& key : cfg.prefetchers) {
    prefetcher_.add(registry::make_prefetcher(key, pctx));
  }
}

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchy& o)
    : cfg_(o.cfg_),
      l1d_(o.l1d_),
      l1i_(o.l1i_),
      l2_(o.l2_),
      bus_(o.bus_),
      dram_(o.dram_),
      pq_(o.pq_),
      buffer_(o.buffer_ ? std::make_unique<mem::PrefetchBuffer>(*o.buffer_)
                        : nullptr),
      victim_(o.victim_ ? std::make_unique<mem::VictimCache>(*o.victim_)
                        : nullptr),
      mshr_(o.mshr_),
      load_latency_(o.load_latency_),
      prefetcher_(o.prefetcher_, l1d_, l2_),
      classifier_(o.classifier_),
      taxonomy_(o.taxonomy_),
      in_flight_(o.in_flight_),
      rejected_(o.rejected_),
      rejected_fifo_(o.rejected_fifo_),
      recovered_(o.recovered_),
      last_l1_fill_cycle_(o.last_l1_fill_cycle_),
      ema_fill_interval_(o.ema_fill_interval_),
      l2_next_free_(o.l2_next_free_),
      ports_left_(o.ports_left_),
      ports_borrowed_(o.ports_borrowed_),
      demand_accesses_(o.demand_accesses_),
      prefetch_l1_fills_(o.prefetch_l1_fills_),
      finalized_(o.finalized_) {
  if (o.owned_filter_ == nullptr) {
    throw std::runtime_error(
        "MemoryHierarchy: cannot clone a hierarchy using an external filter");
  }
  owned_filter_ = o.owned_filter_->clone_rebound(l1d_);
  if (owned_filter_ == nullptr) {
    throw std::runtime_error(std::string("filter '") +
                             o.owned_filter_->name() +
                             "' does not support clone_rebound");
  }
  active_filter_ = owned_filter_.get();
}

void MemoryHierarchy::attach_obs(obs::Recorder& rec) {
  obs_ = &rec;
  obs::MetricRegistry& reg = rec.registry();
  l1d_.register_obs(reg, "l1d");
  l1i_.register_obs(reg, "l1i");
  l2_.register_obs(reg, "l2");
  bus_.register_obs(reg, "bus");
  dram_.register_obs(reg, "dram");
  pq_.register_obs(reg, "pq");
  mshr_.register_obs(reg, "mshr");
  active_filter_->register_obs(reg, "filter");
  prefetcher_.register_obs(reg, "prefetch");
  if (buffer_ != nullptr) {
    const mem::PrefetchBuffer* b = buffer_.get();
    reg.add_counter("pfbuf.hits", [b] { return b->hits(); });
  }
  if (victim_ != nullptr) {
    const mem::VictimCache* v = victim_.get();
    reg.add_counter("victim.hits", [v] { return v->hits(); });
  }
  reg.add_counter("classifier.issued",
                  [this] { return classifier_.issued().total(); });
  reg.add_counter("classifier.filtered",
                  [this] { return classifier_.filtered().total(); });
  reg.add_counter("classifier.good",
                  [this] { return classifier_.good().total(); });
  reg.add_counter("classifier.bad",
                  [this] { return classifier_.bad().total(); });
  reg.add_counter("classifier.squashed",
                  [this] { return classifier_.squashed(); });
  reg.add_counter("hier.demand_accesses",
                  [this] { return demand_accesses_; });
  reg.add_counter("hier.prefetch_l1_fills",
                  [this] { return prefetch_l1_fills_; });
  reg.add_counter("hier.recoveries", [this] { return recovered_; });
  reg.add_gauge("hier.ema_fill_interval",
                [this] { return ema_fill_interval_; });
  reg.add_histogram("l1d.load_latency", &load_latency_);
}

std::uint64_t MemoryHierarchy::unclassified_pib() const {
  std::uint64_t n = l1d_.pib_lines() + l2_.pib_lines();
  if (buffer_ != nullptr) n += buffer_->size();
  return n;
}

void MemoryHierarchy::attach_checks(check::Checker& chk) {
  chk_ = &chk;
  check::CheckRegistry& reg = chk.registry();
  l1d_.register_checks(reg, "l1d");
  l1i_.register_checks(reg, "l1i");
  l2_.register_checks(reg, "l2");
  bus_.register_checks(reg, "bus");
  dram_.register_checks(reg, "dram");
  pq_.register_checks(reg, "pq");
  mshr_.register_checks(reg, "mshr");
  active_filter_->register_checks(reg, "filter");
  prefetcher_.register_checks(reg, "prefetch");
  if (buffer_ != nullptr) buffer_->register_checks(reg, "pfbuf");
  if (victim_ != nullptr) victim_->register_checks(reg, "victim");
  // A snapshot clone attaches with warm, not-yet-classified prefetched
  // lines already resident; they are part of the starting balance.
  baseline_unclassified_ = unclassified_pib();
  reg.add("hier", [this](check::CheckContext& ctx) {
    ctx.require(ports_left_ <= cfg_.l1d.ports, "hier.port_balance", [&] {
      return std::to_string(ports_left_) + " ports left of " +
             std::to_string(cfg_.l1d.ports);
    });
    ctx.require(quiescent() == (pq_.empty() && ports_borrowed_ == 0),
                "hier.quiescent_agrees", [&] {
                  return "quiescent() disagrees with queue depth " +
                         std::to_string(pq_.size()) + " / borrowed ports " +
                         std::to_string(ports_borrowed_);
                });
    ctx.require(rejected_.size() <= rejected_fifo_.size() &&
                    rejected_fifo_.size() <= cfg_.filter_recovery_entries,
                "hier.recovery_bounded", [&] {
                  return std::to_string(rejected_.size()) + " tracked / " +
                         std::to_string(rejected_fifo_.size()) +
                         " FIFO entries, capacity " +
                         std::to_string(cfg_.filter_recovery_entries);
                });
    // Conservation: every prefetch the classifier saw issued is either
    // classified good/bad (eviction, promotion, or drain) or still
    // resident with its PIB — nothing disappears, nothing is counted
    // twice. The baseline carries prefetches issued before the
    // measurement window whose lines are still resident.
    const std::uint64_t issued =
        classifier_.issued().total() + baseline_unclassified_;
    const std::uint64_t accounted = classifier_.good().total() +
                                    classifier_.bad().total() +
                                    unclassified_pib();
    ctx.require(issued == accounted, "hier.classifier_conservation", [&] {
      return "issued " + std::to_string(classifier_.issued().total()) +
             " + baseline " + std::to_string(baseline_unclassified_) +
             " != good " + std::to_string(classifier_.good().total()) +
             " + bad " + std::to_string(classifier_.bad().total()) +
             " + resident " + std::to_string(unclassified_pib());
    });
  });
}

void MemoryHierarchy::begin_cycle(Cycle) {
  // Ports spent on prefetch issue in the previous cycle are still busy
  // when this cycle's demand accesses arrive — this is the port
  // competition between the prefetch queue and normal references.
  const std::uint32_t borrowed =
      ports_borrowed_ > cfg_.l1d.ports ? cfg_.l1d.ports : ports_borrowed_;
  ports_left_ = cfg_.l1d.ports - borrowed;
  ports_borrowed_ = 0;
}

bool MemoryHierarchy::try_reserve_port(Cycle) {
  if (ports_left_ == 0) return false;
  --ports_left_;
  return true;
}

bool MemoryHierarchy::line_resident(LineAddr line) const {
  if (l1d_.contains(l1d_.base_of(line))) return true;
  if (buffer_ != nullptr && buffer_->contains(line)) return true;
  return false;
}

void MemoryHierarchy::handle_eviction(Cycle now, const mem::Eviction& ev) {
  if (ev.pib) {
    if (cfg_.enable_taxonomy) taxonomy_.on_prefetch_evicted(ev.line);
    classifier_.record_outcome(ev.source, ev.rib);
    PPF_OBS_EVENT(obs_,
                  ev.rib ? obs::EventKind::EvictReferenced
                         : obs::EventKind::EvictDead,
                  now, ev.line, ev.trigger_pc, ev.source);
    active_filter_->feedback(
        filter::FilterFeedback{ev.line, ev.trigger_pc, ev.rib, ev.source});
  }
  if (victim_ != nullptr) {
    // The PIB/RIB verdict above is final; the victim cache just gives the
    // data a second chance, so a recalled line returns as demand data.
    // Dirty data is written back eagerly so a silent LRU drop from the
    // victim cache can never lose it (the recall path restores dirty).
    victim_->insert(ev);
  }
  if (ev.dirty) {
    // Posted writeback: consumes bus bandwidth, does not stall anyone.
    bus_.transfer(bus_.next_free(), cfg_.l1d.line_bytes,
                  /*is_prefetch=*/false);
    dram_.writeback();
  }
}

Cycle MemoryHierarchy::fetch_from_l2(Cycle now, Pc pc, Addr addr,
                                     bool is_prefetch, bool fill_l1,
                                     const mem::FillInfo& info,
                                     AccessType type) {
  // Single L2 port: back-to-back requests serialise.
  const Cycle start = now > l2_next_free_ ? now : l2_next_free_;
  l2_next_free_ = start + 1;

  const mem::AccessResult r2 = l2_.access(addr, type);
  if (!is_prefetch && type != AccessType::InstFetch) {
    prefetcher_.on_l2_demand(pc, addr, r2.hit, scratch_cands_);
  }

  Cycle ready;
  if (r2.hit) {
    ready = start + cfg_.l2.latency;
  } else {
    // Miss known after the lookup; a free MSHR is needed to go further.
    const Cycle req = mshr_.earliest_issue(start + cfg_.l2.latency);
    const Cycle mem_ready = dram_.read(req, is_prefetch);
    ready = bus_.transfer(mem_ready, cfg_.l2.line_bytes, is_prefetch);
    mshr_.occupy(ready);
    // Allocate in L2 (inclusive hierarchy). PIB/RIB normally live in the
    // L1; in prefetch-to-L2 mode the L2 line carries them instead.
    const mem::FillInfo l2_info =
        (is_prefetch && cfg_.prefetch_to_l2) ? info : mem::FillInfo{};
    if (auto ev2 = l2_.fill(addr, l2_info)) {
      if (ev2->pib) {
        classifier_.record_outcome(ev2->source, ev2->rib);
        PPF_OBS_EVENT(obs_,
                      ev2->rib ? obs::EventKind::EvictReferenced
                               : obs::EventKind::EvictDead,
                      now, ev2->line, ev2->trigger_pc, ev2->source);
        active_filter_->feedback(filter::FilterFeedback{
            ev2->line, ev2->trigger_pc, ev2->rib, ev2->source});
      }
      if (ev2->dirty) {
        bus_.transfer(bus_.next_free(), cfg_.l2.line_bytes, false);
        dram_.writeback();
      }
    }
    if (l2_info.is_prefetch) {
      // L2-target mode: this L2 allocation is the prefetch's fill.
      PPF_OBS_EVENT(obs_, obs::EventKind::Fill, now, l1d_.line_of(addr), pc,
                    info.source);
    }
  }

  if (fill_l1) {
    mem::Cache& target = type == AccessType::InstFetch ? l1i_ : l1d_;
    const auto ev = target.fill(addr, info);
    if (ev.has_value()) handle_eviction(now, *ev);
    if (is_prefetch && cfg_.enable_taxonomy &&
        type != AccessType::InstFetch) {
      // The victim counts as "live" if it was demand data or a
      // referenced prefetch; displacing dead speculation is free.
      const bool victim_live =
          ev.has_value() && (!ev->pib || ev->rib);
      taxonomy_.on_prefetch_fill(
          l1d_.line_of(addr),
          ev.has_value() ? std::optional<LineAddr>(ev->line) : std::nullopt,
          victim_live);
    }
    if (type != AccessType::InstFetch) {
      const double interval =
          static_cast<double>(now > last_l1_fill_cycle_
                                  ? now - last_l1_fill_cycle_
                                  : 0);
      ema_fill_interval_ += 0.002 * (interval - ema_fill_interval_);
      last_l1_fill_cycle_ = now;
      in_flight_.note_fill(now, l1d_.line_of(addr), ready);
      if (is_prefetch) {
        ++prefetch_l1_fills_;
        PPF_OBS_EVENT(obs_, obs::EventKind::Fill, now, l1d_.line_of(addr),
                      info.trigger_pc, info.source);
        prefetcher_.on_prefetch_fill(l1d_.line_of(addr), info.source);
      }
    }
  }
  return ready;
}

Cycle MemoryHierarchy::demand_access(Cycle now, Pc pc, Addr addr,
                                     bool is_store) {
  ++demand_accesses_;
  scratch_cands_.clear();
  const AccessType type = is_store ? AccessType::Store : AccessType::Load;
  const mem::AccessResult r = l1d_.access(addr, type);
  prefetcher_.on_l1_demand(pc, addr, r, scratch_cands_);

  Cycle result;
  if (r.hit) {
    if (r.first_use_of_prefetch) {
      PPF_OBS_EVENT(obs_, obs::EventKind::FirstUse, now, l1d_.line_of(addr),
                    pc, r.source);
      prefetcher_.on_prefetch_used(l1d_.line_of(addr), r.source);
      if (cfg_.enable_taxonomy) {
        taxonomy_.on_prefetch_used(l1d_.line_of(addr));
      }
    }
    // A line still in flight (e.g. prefetched but not yet arrived) delays
    // the "hit" until the data is actually there.
    const Cycle data_at = inflight_ready(now, l1d_.line_of(addr));
    result = (data_at > now ? data_at : now) + cfg_.l1d.latency;
  } else {
    const LineAddr line = l1d_.line_of(addr);
    // A demand miss supersedes any queued prefetch of the same line.
    pq_.squash_line(line);
    check_recovery(now, line);
    if (cfg_.enable_taxonomy) taxonomy_.on_demand_miss(line);

    // Victim-cache probe: a recent conflict eviction comes straight back.
    if (victim_ != nullptr) {
      if (const auto vc = victim_->recall(line)) {
        mem::FillInfo back;
        back.dirty = vc->dirty || is_store;
        if (auto ev = l1d_.fill(addr, back)) handle_eviction(now, *ev);
        const Cycle done = now + cfg_.l1d.latency + 1;
        if (!is_store) load_latency_.record(done - now);
        route_candidates(now, scratch_cands_);
        return done;
      }
    }

    std::optional<mem::Eviction> promoted;
    if (buffer_ != nullptr) promoted = buffer_->probe_and_remove(line);
    if (promoted.has_value()) {
      // Prefetch-buffer hit: the prefetch proved good; promote into L1 as
      // a demand-resident line.
      classifier_.record_outcome(promoted->source, true);
      PPF_OBS_EVENT(obs_, obs::EventKind::FirstUse, now, line, pc,
                    promoted->source);
      PPF_OBS_EVENT(obs_, obs::EventKind::EvictReferenced, now,
                    promoted->line, promoted->trigger_pc, promoted->source);
      active_filter_->feedback(filter::FilterFeedback{
          promoted->line, promoted->trigger_pc, true, promoted->source});
      prefetcher_.on_prefetch_used(line, promoted->source);
      if (cfg_.enable_taxonomy) taxonomy_.on_prefetch_used(line);
      if (auto ev = l1d_.fill(addr, mem::FillInfo{})) handle_eviction(now, *ev);
      result = now + cfg_.l1d.latency;
    } else {
      const Cycle l1_probe_done = now + cfg_.l1d.latency;
      // Write-allocate: a store miss leaves the freshly filled line dirty.
      mem::FillInfo demand_info;
      demand_info.dirty = is_store;
      result = fetch_from_l2(l1_probe_done, pc, addr, /*is_prefetch=*/false,
                             /*fill_l1=*/true, demand_info, type);
    }
  }

  if (!is_store) load_latency_.record(result - now);
  route_candidates(now, scratch_cands_);
  return result;
}

void MemoryHierarchy::software_prefetch(Cycle now, Pc pc, Addr addr) {
  if (!cfg_.enable_sw_prefetch) return;
  const prefetch::PrefetchRequest req{l1d_.line_of(addr), pc,
                                      PrefetchSource::Software};
  route_candidates(now, {req});
}

Cycle MemoryHierarchy::estimated_residence() const {
  const double cycles =
      ema_fill_interval_ * static_cast<double>(cfg_.l1d.num_lines());
  return static_cast<Cycle>(cycles);
}

void MemoryHierarchy::note_rejected(Cycle now,
                                    const filter::PrefetchCandidate& c) {
  if (cfg_.filter_recovery_entries == 0) return;
  if (RejectedEntry* e = rejected_.find(c.line)) {
    *e = RejectedEntry{c.trigger_pc, c.source, now};
    return;  // already tracked; keep its FIFO position
  }
  rejected_.insert_if_absent(c.line, RejectedEntry{c.trigger_pc, c.source, now});
  rejected_fifo_.push_back(c.line);
  while (rejected_fifo_.size() > cfg_.filter_recovery_entries) {
    rejected_.erase(rejected_fifo_.front());
    rejected_fifo_.pop_front();
  }
}

void MemoryHierarchy::check_recovery(Cycle now, LineAddr line) {
  if (cfg_.filter_recovery_entries == 0) return;
  const RejectedEntry* e = rejected_.find(line);
  if (e == nullptr) return;
  const bool within_residence =
      now - e->reject_cycle <= estimated_residence();
  if (within_residence) {
    // The program demanded a line the filter refused to prefetch, soon
    // enough that the prefetched line would still have been resident:
    // train the table back toward "good" so the stream resumes.
    active_filter_->recover(filter::FilterFeedback{
        line, e->trigger_pc, true, e->source});
    ++recovered_;
    PPF_OBS_EVENT(obs_, obs::EventKind::Recovered, now, line,
                  e->trigger_pc, e->source);
  }
  rejected_.erase(line);
}

void MemoryHierarchy::route_candidates(
    Cycle now, const std::vector<prefetch::PrefetchRequest>& cands) {
  for (const prefetch::PrefetchRequest& c : cands) {
    // Duplicate squash: line already resident or being fetched (no cost).
    if (line_resident(c.line) || line_in_flight(now, c.line)) {
      classifier_.record_squashed();
      PPF_OBS_EVENT(obs_, obs::EventKind::Squashed, now, c.line, c.trigger_pc,
                    c.source);
      continue;
    }
    const filter::PrefetchCandidate fc{c.line, c.trigger_pc, c.source};
    if (!active_filter_->admit(fc)) {
      classifier_.record_filtered(c.source);
      PPF_OBS_EVENT(obs_, obs::EventKind::Filtered, now, c.line, c.trigger_pc,
                    c.source);
      note_rejected(now, fc);
      continue;
    }
    pq_.push(mem::PrefetchQueueEntry{c.line, c.trigger_pc, c.source, now});
  }
}

void MemoryHierarchy::end_cycle(Cycle now) {
  while (ports_left_ > 0 && !pq_.empty()) {
    --ports_left_;
    ++ports_borrowed_;
    const auto e = pq_.pop(now);
    PPF_ASSERT(e.has_value());
    // The L1 probe happens at issue; a resident/in-flight line squashes
    // the prefetch (the port was still consumed by the probe). In
    // L2-target mode an L2-resident line is equally redundant.
    if (line_resident(e->line) || line_in_flight(now, e->line) ||
        (cfg_.prefetch_to_l2 && l2_.contains(l1d_.base_of(e->line)))) {
      classifier_.record_squashed();
      PPF_OBS_EVENT(obs_, obs::EventKind::Squashed, now, e->line,
                    e->trigger_pc, e->source);
      continue;
    }
    const Addr addr = l1d_.base_of(e->line);
    classifier_.record_issued(e->source);
    PPF_OBS_EVENT(obs_, obs::EventKind::Issued, now, e->line, e->trigger_pc,
                  e->source);
    const mem::FillInfo info{/*is_prefetch=*/true, e->trigger_pc, e->source};
    if (cfg_.prefetch_to_l2) {
      // Structural pollution avoidance: stage the data in the L2 only.
      fetch_from_l2(now, e->trigger_pc, addr, /*is_prefetch=*/true,
                    /*fill_l1=*/false, info, AccessType::Prefetch);
    } else if (buffer_ != nullptr) {
      // Dedicated-buffer mode: fetch the data but fill the buffer.
      fetch_from_l2(now, e->trigger_pc, addr, /*is_prefetch=*/true,
                    /*fill_l1=*/false, info, AccessType::Prefetch);
      PPF_OBS_EVENT(obs_, obs::EventKind::Fill, now, e->line, e->trigger_pc,
                    e->source);
      if (auto ev = buffer_->insert(e->line, e->trigger_pc, e->source)) {
        handle_eviction(now, *ev);
      }
    } else {
      fetch_from_l2(now, e->trigger_pc, addr, /*is_prefetch=*/true,
                    /*fill_l1=*/true, info, AccessType::Prefetch);
    }
  }
  if (obs_ != nullptr) obs_->tick(now);
  // End-of-cycle is the one point where every component's state is
  // settled, so the paranoid cadence sweeps here.
  if (chk_ != nullptr) chk_->tick(now);
}

Cycle MemoryHierarchy::fetch(Cycle now, Pc pc) {
  const mem::AccessResult r = l1i_.access(pc, AccessType::InstFetch);
  if (r.hit) return now;  // single-cycle fetch folded into the pipeline
  return fetch_from_l2(now + cfg_.l1i.latency, pc, pc, /*is_prefetch=*/false,
                       /*fill_l1=*/true, mem::FillInfo{},
                       AccessType::InstFetch);
}

void MemoryHierarchy::reset_stats() {
  l1d_.reset_stats();
  l1i_.reset_stats();
  l2_.reset_stats();
  bus_.reset_stats();
  dram_.reset_stats();
  pq_.reset_stats();
  if (buffer_ != nullptr) buffer_->reset_stats();
  classifier_.reset();
  taxonomy_.reset();
  mshr_.reset_stats();
  if (victim_ != nullptr) victim_->reset_stats();
  load_latency_.reset();
  active_filter_->reset_stats();
  demand_accesses_ = 0;
  prefetch_l1_fills_ = 0;
  if (obs_ != nullptr) obs_->on_stats_reset();
  // Conservation baseline: counters are now zero, but warm prefetched
  // lines stay resident and will be classified inside the window.
  if (chk_ != nullptr) baseline_unclassified_ = unclassified_pib();
}

void MemoryHierarchy::finalize() {
  PPF_CHECK_MSG(!finalized_, "finalize() called twice");
  finalized_ = true;
  // Final sweep (modes final and paranoid) before the drains below strip
  // the resident-PIB state the conservation law accounts for.
  if (chk_ != nullptr) chk_->sweep(chk_->last_cycle());
  // Drain events carry the last simulated cycle (deterministic; there is
  // no "after the end" cycle to attribute them to).
  const Cycle end = obs_ != nullptr ? obs_->last_cycle() : 0;
  for (const mem::Eviction& ev : l1d_.drain()) {
    if (ev.pib) {
      if (cfg_.enable_taxonomy) taxonomy_.on_prefetch_evicted(ev.line);
      classifier_.record_outcome(ev.source, ev.rib);
      PPF_OBS_EVENT(obs_,
                    ev.rib ? obs::EventKind::EvictReferenced
                           : obs::EventKind::EvictDead,
                    end, ev.line, ev.trigger_pc, ev.source);
    }
  }
  if (cfg_.enable_taxonomy) taxonomy_.finalize();
  if (buffer_ != nullptr) {
    for (const mem::Eviction& ev : buffer_->drain()) {
      classifier_.record_outcome(ev.source, ev.rib);
      PPF_OBS_EVENT(obs_,
                    ev.rib ? obs::EventKind::EvictReferenced
                           : obs::EventKind::EvictDead,
                    end, ev.line, ev.trigger_pc, ev.source);
    }
  }
  if (cfg_.prefetch_to_l2) {
    for (const mem::Eviction& ev : l2_.drain()) {
      if (ev.pib) {
        classifier_.record_outcome(ev.source, ev.rib);
        PPF_OBS_EVENT(obs_,
                      ev.rib ? obs::EventKind::EvictReferenced
                             : obs::EventKind::EvictDead,
                      end, ev.line, ev.trigger_pc, ev.source);
      }
    }
  }
}

}  // namespace ppf::sim
