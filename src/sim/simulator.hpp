// Top-level simulation driver: wires a workload trace, the OoO core, and
// the memory hierarchy together and collects one SimResult.
#pragma once

#include <memory>
#include <string>

#include "core/ooo_core.hpp"
#include "obs/recorder.hpp"
#include "sim/classifier.hpp"
#include "sim/sim_config.hpp"
#include "sim/energy.hpp"
#include "sim/taxonomy.hpp"
#include "workload/trace.hpp"

namespace ppf::sim {

/// Everything a paper figure needs from one run.
struct SimResult {
  std::string workload;
  std::string filter_name;

  core::CoreResult core;

  // Demand miss statistics (loads + stores at L1D; demand at L2).
  std::uint64_t l1d_demand_accesses = 0;
  std::uint64_t l1d_demand_misses = 0;
  std::uint64_t l2_demand_accesses = 0;
  std::uint64_t l2_demand_misses = 0;

  SourceBreakdown prefetch_issued;
  SourceBreakdown prefetch_filtered;
  SourceBreakdown prefetch_good;
  SourceBreakdown prefetch_bad;
  std::uint64_t prefetch_squashed = 0;

  // Traffic accounting (Figure 2): L1 accesses from the program vs from
  // the prefetch machinery, and bus transfers attributable to prefetches.
  std::uint64_t l1_normal_traffic = 0;
  std::uint64_t l1_prefetch_traffic = 0;
  std::uint64_t bus_transfers = 0;
  std::uint64_t bus_prefetch_transfers = 0;
  std::uint64_t bus_busy_cycles = 0;

  std::uint64_t filter_admitted = 0;
  std::uint64_t filter_rejected = 0;
  std::uint64_t filter_recoveries = 0;

  /// Memory-system energy estimate (see sim/energy.hpp).
  EnergyBreakdown energy;
  /// Energy-delay product in nJ x cycles (lower is better).
  [[nodiscard]] double edp() const {
    return energy.total_nj() * static_cast<double>(core.cycles);
  }

  double avg_load_latency = 0.0;   ///< mean demand-load latency (cycles)
  std::uint64_t mshr_stalls = 0;   ///< misses delayed by a full MSHR file
  std::uint64_t victim_hits = 0;   ///< L1 misses served by the victim cache

  /// Srinivasan-taxonomy view of the issued prefetches (when enabled).
  TaxonomyCounts taxonomy;

  /// Full observability record (events, time series, final metrics) when
  /// the run had cfg.obs.enabled; null otherwise. shared_ptr so copying a
  /// SimResult (runlab aggregation) stays cheap.
  std::shared_ptr<const obs::RunObservation> observation;

  [[nodiscard]] double ipc() const { return core.ipc(); }
  [[nodiscard]] double l1d_miss_rate() const;
  [[nodiscard]] double l2_miss_rate() const;
  [[nodiscard]] std::uint64_t good_total() const {
    return prefetch_good.total();
  }
  [[nodiscard]] std::uint64_t bad_total() const { return prefetch_bad.total(); }
  [[nodiscard]] double bad_good_ratio() const;
  /// Prefetch share of L1 traffic (Figure 2's ratio).
  [[nodiscard]] double prefetch_traffic_ratio() const;
};

class MemoryHierarchy;

/// Fault-injection test hook: throws std::runtime_error when
/// cfg.diff_fail_at is non-zero and the run would dispatch at least that
/// many instructions (warmup included). Called on entry by both
/// Simulator::run and run_from_snapshot; see SimConfig::diff_fail_at.
void maybe_inject_fault(const SimConfig& cfg);

/// Finalize `mem` (drain + classify resident prefetches) and assemble the
/// SimResult for a finished run. Shared by the cold path (Simulator::run)
/// and the warmup-snapshot path (run_from_snapshot) so both produce
/// results through identical code.
SimResult collect_result(const SimConfig& cfg, MemoryHierarchy& mem,
                         const core::CoreResult& core, std::string workload);

class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  /// Run `trace` through a fresh core + hierarchy.
  /// `external_filter` (optional, non-owning) substitutes the filter.
  SimResult run(workload::TraceSource& trace,
                filter::PollutionFilter* external_filter = nullptr);

  [[nodiscard]] const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
};

}  // namespace ppf::sim
