#include "sim/energy.hpp"

namespace ppf::sim {

EnergyBreakdown compute_energy(const EnergyConfig& cfg,
                               const EnergyEvents& ev) {
  EnergyBreakdown b;
  b.l1_nj = cfg.l1_access * static_cast<double>(ev.l1_accesses);
  b.l2_nj = cfg.l2_access * static_cast<double>(ev.l2_accesses);
  b.dram_nj = cfg.dram_access * static_cast<double>(ev.dram_accesses);
  b.bus_nj = cfg.bus_beat * static_cast<double>(ev.bus_beats);
  b.table_nj = cfg.table_lookup * static_cast<double>(ev.table_ops);
  return b;
}

}  // namespace ppf::sim
