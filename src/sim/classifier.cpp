#include "sim/classifier.hpp"

#include "common/stats.hpp"

namespace ppf::sim {

double PrefetchClassifier::bad_good_ratio() const {
  return ratio(bad_.total(), good_.total());
}

}  // namespace ppf::sim
