// Warmup snapshot reuse.
//
// A sweep typically runs many jobs whose configs agree on everything that
// shapes warmup-time behaviour and differ only in measurement-window
// parameters (max_instructions, energy prices). For such a group the
// warmup phase is byte-for-byte identical work: same trace records, same
// cache/filter/prefetcher state evolution. A WarmupSnapshot runs that
// phase once — core paused mid-cycle exactly at the warmup boundary, the
// same instant at which the cold path fires its warmup callback — and
// each job then deep-copies the paused machine (MemoryHierarchy rebinding
// copy + CoreEngine::clone_rebound) and runs only its measurement window.
//
// Sharing rule: a snapshot made from config A may serve a job with config
// B iff warmup_key(A) == warmup_key(B). The key serialises every
// SimConfig field except max_instructions and energy — in particular it
// includes the filter kind and its tables, because the filter gates which
// prefetches fill the caches *during warmup* and therefore shapes the
// warm state. Any new SimConfig field must be added to warmup_key() or
// snapshots will be wrongly shared across configs that differ in it.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/simulator.hpp"
#include "workload/materialized.hpp"

namespace ppf::sim {

/// A machine paused at the warmup boundary. Immutable once built: jobs
/// only ever clone it, so one snapshot may serve many threads.
class WarmupSnapshot {
 public:
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  /// Instructions dispatched during warmup (== cfg.warmup_instructions).
  [[nodiscard]] std::uint64_t warmup_dispatched() const { return warmup_; }
  /// Trace records consumed at the pause point (dispatched + records
  /// still sitting in the core's fetch buffer).
  [[nodiscard]] std::size_t trace_pos() const { return cursor_->pos(); }
  /// Length of the arena this snapshot was built over. A resumed job
  /// reads the measurement window from this same arena, so a job needing
  /// more records than this must rebuild the snapshot on a longer arena.
  [[nodiscard]] std::size_t arena_size() const;
  /// Approximate resident bytes of the frozen machine (cache cap /
  /// eviction decisions). Derived from the config (SRAM arrays dominate),
  /// not measured — precision is irrelevant, monotonicity is not.
  [[nodiscard]] std::size_t estimated_bytes() const;

 private:
  friend std::shared_ptr<const WarmupSnapshot> make_warmup_snapshot(
      const SimConfig&, std::shared_ptr<const workload::MaterializedTrace>);
  friend SimResult run_from_snapshot(const SimConfig&, const WarmupSnapshot&);

  WarmupSnapshot() = default;

  SimConfig cfg_;
  std::shared_ptr<const workload::MaterializedTrace> arena_;
  std::unique_ptr<workload::TraceCursor> cursor_;  ///< engine_'s trace
  std::unique_ptr<MemoryHierarchy> mem_;
  std::unique_ptr<core::CoreEngine> engine_;  ///< paused at the boundary
  std::uint64_t warmup_ = 0;
};

/// Serialised warmup-relevant configuration: equal keys <=> identical
/// warmup behaviour. Excludes max_instructions and energy prices; see the
/// file comment for the invariant this encodes.
[[nodiscard]] std::string warmup_key(const SimConfig& cfg);

/// Run the warmup phase of `cfg` over `arena` once and freeze the machine
/// at the boundary. Returns nullptr when there is nothing to share:
/// warmup is inactive (warmup_instructions == 0 or >= max_instructions),
/// the arena is too short to cover warmup, or the configured
/// filter/prefetchers do not support cloning.
[[nodiscard]] std::shared_ptr<const WarmupSnapshot> make_warmup_snapshot(
    const SimConfig& cfg,
    std::shared_ptr<const workload::MaterializedTrace> arena);

/// Clone the paused machine and run the measurement window of `cfg`.
/// `cfg` must satisfy warmup_key(cfg) == warmup_key(snap.config());
/// max_instructions and energy may differ. Produces byte-identical
/// SimResults to Simulator::run on the same trace (guarded by
/// tests/sim/snapshot_test.cpp).
[[nodiscard]] SimResult run_from_snapshot(const SimConfig& cfg,
                                          const WarmupSnapshot& snap);

}  // namespace ppf::sim
