#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>

#include "common/stats.hpp"
#include "sim/batched_core.hpp"
#include "sim/memory_hierarchy.hpp"

namespace ppf::sim {

void maybe_inject_fault(const SimConfig& cfg) {
  if (cfg.diff_fail_at == 0) return;
  const std::uint64_t warmup =
      cfg.warmup_instructions < cfg.max_instructions ? cfg.warmup_instructions
                                                     : 0;
  if (cfg.max_instructions + warmup >= cfg.diff_fail_at) {
    throw std::runtime_error("diff_fail_at tripwire: injected fault (run of " +
                             std::to_string(cfg.max_instructions + warmup) +
                             " instructions >= " +
                             std::to_string(cfg.diff_fail_at) + ")");
  }
}

double SimResult::l1d_miss_rate() const {
  return ratio(l1d_demand_misses, l1d_demand_accesses);
}

double SimResult::l2_miss_rate() const {
  return ratio(l2_demand_misses, l2_demand_accesses);
}

double SimResult::bad_good_ratio() const {
  return ratio(bad_total(), good_total());
}

double SimResult::prefetch_traffic_ratio() const {
  return ratio(l1_prefetch_traffic, l1_normal_traffic);
}

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) {}

SimResult Simulator::run(workload::TraceSource& trace,
                         filter::PollutionFilter* external_filter) {
  maybe_inject_fault(cfg_);
  MemoryHierarchy mem(cfg_, external_filter);

  std::unique_ptr<obs::Recorder> rec;
  if (cfg_.obs.enabled) {
    rec = std::make_unique<obs::Recorder>(cfg_.obs);
    mem.attach_obs(*rec);
  }
  std::unique_ptr<check::Checker> chk;
  if (cfg_.check.mode != check::CheckMode::Off) {
    chk = std::make_unique<check::Checker>(cfg_.check);
    mem.attach_checks(*chk);
  }

  const std::uint64_t warmup =
      cfg_.warmup_instructions < cfg_.max_instructions
          ? cfg_.warmup_instructions
          : 0;
  const auto on_warmup = [&mem] { mem.reset_stats(); };
  const auto engine = make_sim_engine(cfg_, mem);
  if (rec != nullptr) engine->register_obs(rec->registry());
  if (chk != nullptr) engine->register_checks(chk->registry());
  // Heartbeats are independent of the obs switch: runlab progress wants
  // them even for plain (obs-off) jobs.
  if (cfg_.obs.heartbeat_slot != nullptr) {
    engine->set_heartbeat(cfg_.obs.heartbeat_slot);
  }
  const core::CoreResult core = engine->run(
      trace, cfg_.max_instructions + warmup, warmup, on_warmup);
  return collect_result(cfg_, mem, core, trace.name());
}

SimResult collect_result(const SimConfig& cfg, MemoryHierarchy& mem,
                         const core::CoreResult& core, std::string workload) {
  mem.finalize();

  SimResult res;
  res.workload = std::move(workload);
  res.filter_name = mem.filter().name();
  res.core = core;

  const mem::Cache& l1d = mem.l1d();
  res.l1d_demand_accesses = l1d.hits(AccessType::Load) +
                            l1d.hits(AccessType::Store) +
                            l1d.misses(AccessType::Load) +
                            l1d.misses(AccessType::Store);
  res.l1d_demand_misses =
      l1d.misses(AccessType::Load) + l1d.misses(AccessType::Store);

  const mem::Cache& l2 = mem.l2();
  res.l2_demand_accesses = l2.hits(AccessType::Load) +
                           l2.hits(AccessType::Store) +
                           l2.misses(AccessType::Load) +
                           l2.misses(AccessType::Store);
  res.l2_demand_misses =
      l2.misses(AccessType::Load) + l2.misses(AccessType::Store);

  const PrefetchClassifier& cls = mem.classifier();
  res.prefetch_issued = cls.issued();
  res.prefetch_filtered = cls.filtered();
  res.prefetch_good = cls.good();
  res.prefetch_bad = cls.bad();
  res.prefetch_squashed = cls.squashed();

  res.l1_normal_traffic = mem.demand_l1_accesses();
  res.l1_prefetch_traffic = mem.prefetch_l1_fills();
  res.bus_transfers = mem.bus().transfers();
  res.bus_prefetch_transfers = mem.bus().prefetch_transfers();
  res.bus_busy_cycles = mem.bus().busy_cycles();

  res.filter_admitted = mem.filter().admitted();
  res.filter_rejected = mem.filter().rejected();
  res.filter_recoveries = mem.filter_recoveries();
  res.taxonomy = mem.taxonomy().counts();
  {
    EnergyEvents ev;
    ev.l1_accesses = mem.l1d().total_hits() + mem.l1d().total_misses() +
                     mem.l1d().fills() + mem.l1i().total_hits() +
                     mem.l1i().total_misses() + mem.l1i().fills();
    ev.l2_accesses =
        mem.l2().total_hits() + mem.l2().total_misses() + mem.l2().fills();
    ev.dram_accesses = mem.dram().reads() + mem.dram().writebacks();
    ev.bus_beats = mem.bus().busy_cycles() / cfg.bus.cycles_per_beat;
    ev.table_ops = mem.filter().admitted() + mem.filter().rejected() +
                   mem.classifier().good().total() +
                   mem.classifier().bad().total() + mem.filter_recoveries();
    res.energy = compute_energy(cfg.energy, ev);
  }
  res.avg_load_latency = mem.load_latency().mean();
  res.mshr_stalls = mem.mshr().stalls();
  res.victim_hits =
      mem.victim_cache() == nullptr ? 0 : mem.victim_cache()->hits();
  if (obs::Recorder* rec = mem.obs_recorder(); rec != nullptr) {
    // After finalize(): the drain-time eviction events are in the buffer
    // and the classifier totals are final, so counts reconcile exactly.
    res.observation =
        std::make_shared<obs::RunObservation>(rec->finish());
  }
  return res;
}

}  // namespace ppf::sim
