// ppf_analyze — whole-tree static analysis for the ppf repo.
//
// One tokenizer (src/analyze) feeds every pass: include-layer DAG
// against docs/LAYERS.md, determinism taint from the simulation hot
// path, lock discipline over PPF_GUARDED_BY annotations, unified
// source<->docs catalogs, and the migrated ppf_lint convention rules.
// Rule catalogue: docs/ANALYSIS.md.
//
// Usage: ppf_analyze [--root DIR] [--json] [--sarif FILE]
//                    [--rule NAME]... [--baseline FILE] [--no-baseline]
//                    [--fix-baseline] [--expect-violations] [--list-rules]
//
// Baseline: findings listed in the baseline file (default
// tools/analyze_baseline.txt under the root) are suppressed —
// grandfathered, not endorsed. Stale entries (matching nothing) fail
// the run so the baseline only ever shrinks; `--fix-baseline`
// regenerates it deterministically from the current findings.
//
// Exit: 0 clean (or, under --expect-violations, at least one finding)
//       1 findings / stale baseline entries (or, under
//         --expect-violations, none)
//       2 usage or I/O error
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/engine.hpp"
#include "analyze/report.hpp"

namespace fs = std::filesystem;
using namespace ppf::analyze;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: ppf_analyze [--root DIR] [--json] [--sarif FILE]\n"
        "                   [--rule NAME]... [--baseline FILE]\n"
        "                   [--no-baseline] [--fix-baseline]\n"
        "                   [--expect-violations] [--list-rules]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path baseline_path;  // default resolved against root below
  fs::path sarif_path;
  bool json = false;
  bool sarif = false;
  bool no_baseline = false;
  bool fix_baseline = false;
  bool expect_violations = false;
  std::set<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif = true;
      sarif_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      only.insert(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--expect-violations") {
      expect_violations = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : all_rules()) {
        std::cout << r.name << ": " << r.help << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "ppf_analyze: unknown argument: " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (!only.empty()) {
    for (const std::string& r : only) {
      bool known = false;
      for (const RuleInfo& info : all_rules()) known |= r == info.name;
      if (!known) {
        std::cerr << "ppf_analyze: unknown rule: " << r
                  << " (see --list-rules)\n";
        return 2;
      }
    }
  }
  if (!fs::exists(root)) {
    std::cerr << "ppf_analyze: no such directory: " << root.string() << "\n";
    return 2;
  }
  root = fs::canonical(root);
  if (baseline_path.empty()) {
    baseline_path = root / "tools" / "analyze_baseline.txt";
  }

  const std::vector<Diagnostic> diags = analyze_tree(root, only);

  if (fix_baseline) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::cerr << "ppf_analyze: cannot write " << baseline_path.string()
                << "\n";
      return 2;
    }
    out << render_baseline(diags);
    std::cout << "ppf_analyze: baseline rewritten (" << diags.size()
              << " finding(s)) at " << baseline_path.string() << "\n";
    return 0;
  }

  std::vector<Diagnostic> fresh;
  std::vector<Diagnostic> suppressed;
  std::vector<BaselineEntry> stale;
  if (no_baseline) {
    fresh = diags;
  } else {
    const Baseline b = load_baseline(baseline_path);
    stale = apply_baseline(b, diags, fresh, suppressed);
  }

  if (sarif) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "ppf_analyze: cannot write " << sarif_path.string()
                << "\n";
      return 2;
    }
    print_sarif(out, fresh);
  }
  if (json) {
    print_json(std::cout, fresh);
  } else if (!sarif) {
    print_human(std::cout, fresh);
  }

  if (expect_violations) {
    if (fresh.empty()) {
      std::cerr << "ppf_analyze: expected violations, found none\n";
      return 1;
    }
    return 0;
  }
  int code = 0;
  if (!fresh.empty()) {
    std::cerr << "ppf_analyze: " << fresh.size() << " finding(s)";
    if (!suppressed.empty()) {
      std::cerr << " (+" << suppressed.size() << " baselined)";
    }
    std::cerr << "\n";
    code = 1;
  }
  if (!stale.empty()) {
    std::cerr << "ppf_analyze: " << stale.size()
              << " stale baseline entr(y/ies) — fixed findings must "
                 "leave the baseline; run --fix-baseline:\n";
    for (const BaselineEntry& e : stale) {
      std::cerr << "  " << e.rule << "|" << e.file << "|" << e.message
                << "\n";
    }
    code = 1;
  }
  return code;
}
