// ppf_serve — sweep-as-a-service daemon.
//
// Listens on a TCP port and answers line-delimited JSON requests (see
// docs/SERVE.md): clients submit the same key=value config strings
// ppf_batch accepts and get back the same deterministic metrics objects
// the batch JSON sink writes. Repeated identical configs are answered
// from a result memo; trace arenas and warmup snapshots persist across
// requests for the daemon's lifetime (LRU byte budgets apply).
//
//   ppf_serve port=7077 jobs=4 queue_depth=64
//   ppf_serve port=0            # ephemeral; parse the announce line
//
// Prints "ppf_serve: listening on HOST:PORT" to stderr once ready.
// SIGINT/SIGTERM (or a client's `shutdown` verb) drain in-flight work
// and exit 0.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/shutdown.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace ppf;

namespace {

// Fatal-signal flight dump: the handler may only touch async-signal-safe
// calls, which FlightRecorder::crash_dump honors (try_lock + snprintf +
// write(2)). Plain pointers/arrays — no destructors run on this path.
obs::FlightRecorder* g_flight = nullptr;
char g_flight_out[512] = {0};

extern "C" void crash_handler(int sig) {
  if (g_flight != nullptr && g_flight_out[0] != '\0') {
    const int fd =
        ::open(g_flight_out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      g_flight->crash_dump(fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [key=value ...]\n\n"
      << "keys:\n"
      << "  host=ADDR        — bind address (default 127.0.0.1)\n"
      << "  port=N           — TCP port; 0 picks an ephemeral one "
         "(default 0)\n"
      << "  jobs=N           — simulation worker threads (default: "
         "hardware threads)\n"
      << "  queue_depth=N    — max queued+in-flight runs before "
         "queue_full rejections (default 64)\n"
      << "  memo=0|1         — serve repeated identical configs from the "
         "result memo (default 1)\n"
      << "  trace_cache_mb=N — LRU byte budget for resident trace arenas "
         "(default 0 = unbounded)\n"
      << "  snapshot_cache_mb=N — LRU budget for warmup snapshots "
         "(default 0 = unbounded)\n"
      << "  instructions=N   — measurement window for configs that do "
         "not set instructions= (default 1000000)\n"
      << "  prof=0|1         — wall-clock profiler probes on serve and "
         "runlab hot paths (default 0)\n"
      << "  span_buffer=N    — per-connection request-span ring capacity; "
         "0 disables spans (default 4096)\n"
      << "  flight_recorder=N — flight-recorder span ring capacity; 0 "
         "disables it (default 2048)\n"
      << "  flight_out=PATH  — where CheckViolation / fatal-signal flight "
         "dumps land (default ppf_serve_flight.jsonl)\n"
      << "  span_out=PATH    — write the whole soak's request spans as a "
         "Chrome/Perfetto trace on exit (default off)\n"
      << "\nprotocol verbs (docs/SERVE.md):\n";
  for (const serve::VerbDoc& d : serve::verb_docs()) {
    std::cerr << "  " << d.verb << " — " << d.help << "\n";
  }
  std::cerr << "\nerror codes:\n";
  for (const serve::ErrorCodeDoc& d : serve::error_code_docs()) {
    std::cerr << "  " << d.code << " — " << d.help << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);
  const std::vector<std::string> known = {
      "host",           "port", "jobs",     "queue_depth", "memo",
      "trace_cache_mb", "snapshot_cache_mb", "instructions",
      "prof",           "span_buffer", "flight_recorder", "flight_out",
      "span_out"};
  for (const auto& [k, v] : params.entries()) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      std::cerr << "unknown key: " << k << "\n\n";
      return usage(argv[0]);
    }
  }

  serve::ServiceConfig cfg;
  serve::ServerOptions net;
  try {
    net.host = params.get_string("host", "127.0.0.1");
    net.port = static_cast<std::uint16_t>(params.get_u64("port", 0));
    cfg.workers = params.get_u64("jobs", 0);
    cfg.queue_depth = params.get_u64("queue_depth", 64);
    cfg.memo = params.get_bool("memo", true);
    cfg.trace_cache_mb = params.get_u64("trace_cache_mb", 0);
    cfg.snapshot_cache_mb = params.get_u64("snapshot_cache_mb", 0);
    cfg.default_instructions = params.get_u64("instructions", 1'000'000);
    cfg.prof = params.get_bool("prof", false);
    cfg.span_buffer = params.get_u64("span_buffer", 4096);
    cfg.flight_recorder = params.get_u64("flight_recorder", 2048);
    cfg.flight_out =
        params.get_string("flight_out", "ppf_serve_flight.jsonl");
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  const std::string span_out = params.get_string("span_out", "");
  if (cfg.queue_depth == 0) {
    std::cerr << "queue_depth must be at least 1\n";
    return usage(argv[0]);
  }

  try {
    serve::Service service(cfg);
    if (service.flight() != nullptr) {
      g_flight = service.flight();
      cfg.flight_out.copy(g_flight_out, sizeof(g_flight_out) - 1);
      ::signal(SIGSEGV, crash_handler);
      ::signal(SIGABRT, crash_handler);
    }
    serve::Server server(service, net);
    ShutdownRequest shutdown;
    shutdown.install_signal_handlers();
    std::cerr << "ppf_serve: listening on " << net.host << ":"
              << server.port() << " (" << service.workers()
              << " workers, queue depth " << cfg.queue_depth << ")\n"
              << std::flush;
    server.serve(shutdown);
    // The handler must not outlive the Service it points into.
    g_flight = nullptr;
    if (!span_out.empty()) {
      std::ofstream out(span_out, std::ios::trunc);
      if (out) {
        obs::write_spans_chrome(out, service.span_dump(), "ppf_serve");
        std::cerr << "ppf_serve: wrote request spans to " << span_out
                  << "\n";
      } else {
        std::cerr << "ppf_serve: could not open span_out " << span_out
                  << "\n";
      }
    }
    std::cerr << "ppf_serve: drained, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "ppf_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
