// ppf_serve — sweep-as-a-service daemon.
//
// Listens on a TCP port and answers line-delimited JSON requests (see
// docs/SERVE.md): clients submit the same key=value config strings
// ppf_batch accepts and get back the same deterministic metrics objects
// the batch JSON sink writes. Repeated identical configs are answered
// from a result memo; trace arenas and warmup snapshots persist across
// requests for the daemon's lifetime (LRU byte budgets apply).
//
//   ppf_serve port=7077 jobs=4 queue_depth=64
//   ppf_serve port=0            # ephemeral; parse the announce line
//
// Prints "ppf_serve: listening on HOST:PORT" to stderr once ready.
// SIGINT/SIGTERM (or a client's `shutdown` verb) drain in-flight work
// and exit 0.
#include <algorithm>
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/shutdown.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [key=value ...]\n\n"
      << "keys:\n"
      << "  host=ADDR        — bind address (default 127.0.0.1)\n"
      << "  port=N           — TCP port; 0 picks an ephemeral one "
         "(default 0)\n"
      << "  jobs=N           — simulation worker threads (default: "
         "hardware threads)\n"
      << "  queue_depth=N    — max queued+in-flight runs before "
         "queue_full rejections (default 64)\n"
      << "  memo=0|1         — serve repeated identical configs from the "
         "result memo (default 1)\n"
      << "  trace_cache_mb=N — LRU byte budget for resident trace arenas "
         "(default 0 = unbounded)\n"
      << "  snapshot_cache_mb=N — LRU budget for warmup snapshots "
         "(default 0 = unbounded)\n"
      << "  instructions=N   — measurement window for configs that do "
         "not set instructions= (default 1000000)\n"
      << "\nprotocol verbs (docs/SERVE.md):\n";
  for (const serve::VerbDoc& d : serve::verb_docs()) {
    std::cerr << "  " << d.verb << " — " << d.help << "\n";
  }
  std::cerr << "\nerror codes:\n";
  for (const serve::ErrorCodeDoc& d : serve::error_code_docs()) {
    std::cerr << "  " << d.code << " — " << d.help << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);
  const std::vector<std::string> known = {
      "host",           "port", "jobs",     "queue_depth", "memo",
      "trace_cache_mb", "snapshot_cache_mb", "instructions"};
  for (const auto& [k, v] : params.entries()) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      std::cerr << "unknown key: " << k << "\n\n";
      return usage(argv[0]);
    }
  }

  serve::ServiceConfig cfg;
  serve::ServerOptions net;
  try {
    net.host = params.get_string("host", "127.0.0.1");
    net.port = static_cast<std::uint16_t>(params.get_u64("port", 0));
    cfg.workers = params.get_u64("jobs", 0);
    cfg.queue_depth = params.get_u64("queue_depth", 64);
    cfg.memo = params.get_bool("memo", true);
    cfg.trace_cache_mb = params.get_u64("trace_cache_mb", 0);
    cfg.snapshot_cache_mb = params.get_u64("snapshot_cache_mb", 0);
    cfg.default_instructions = params.get_u64("instructions", 1'000'000);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (cfg.queue_depth == 0) {
    std::cerr << "queue_depth must be at least 1\n";
    return usage(argv[0]);
  }

  try {
    serve::Service service(cfg);
    serve::Server server(service, net);
    ShutdownRequest shutdown;
    shutdown.install_signal_handlers();
    std::cerr << "ppf_serve: listening on " << net.host << ":"
              << server.port() << " (" << service.workers()
              << " workers, queue depth " << cfg.queue_depth << ")\n"
              << std::flush;
    server.serve(shutdown);
    std::cerr << "ppf_serve: drained, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "ppf_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
