// ppf_sim — the standalone simulator driver.
//
// Runs one workload (a named Table 2 benchmark or a captured .ppftrace
// file) on a fully configurable machine and prints the complete result,
// optionally as CSV for scripting.
//
//   ppf_sim bench=mcf filter=pc instructions=2000000
//   ppf_sim trace=/tmp/app.ppftrace filter=pa csv=1
//   ppf_sim bench=mcf filter=pc trace_out=trace.json timeseries_out=ts.json
//   ppf_sim help=1
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "check/check.hpp"
#include "common/config.hpp"
#include "obs/export.hpp"
#include "sim/config_apply.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "workload/benchmarks.hpp"
#include "workload/materialized.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [bench=<name>|trace=<file>] "
            << "[csv=0|1] [config=0|1] [trace_cache=0|1] [warmup_share=0|1] "
            << "[key=value ...]\n\n"
            << "  trace_cache=0|1  — pre-materialize the benchmark trace and "
               "run from the arena (default 1; results identical)\n"
            << "  warmup_share=0|1 — exercise the warmup-snapshot path: pause "
               "at the warmup boundary, clone, resume (default 0; results "
               "identical, needs trace_cache=1)\n"
            << "observability keys (see docs/OBSERVABILITY.md):\n"
            << "  obs=0|1          — enable the metrics/trace recorder "
               "(implied by the keys below)\n"
            << "  trace_out=PATH (or --trace-out=PATH) — write the prefetch "
               "lifecycle trace: Chrome/Perfetto trace_event JSON, or JSONL "
               "(ppf.trace.v1) when PATH ends in .jsonl\n"
            << "  timeseries_out=PATH — write interval metric deltas "
               "(ppf.timeseries.v1 JSON)\n"
            << "  sample_interval=N — cycles per time-series row (default "
               "50000 when timeseries_out is set)\n\nworkloads:";
  for (const std::string& n : workload::benchmark_names()) {
    std::cerr << " " << n;
  }
  std::cerr << "\n\nmachine keys:\n";
  for (const sim::OverrideDoc& d : sim::override_docs()) {
    std::cerr << "  " << d.key << " — " << d.help << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept the GNU-style spelling for the trace sink so scripts can say
  // --trace-out=trace.json; everything else is key=value.
  std::vector<std::string> arg_storage(argv, argv + argc);
  std::vector<char*> arg_ptrs;
  for (std::string& a : arg_storage) {
    const std::string prefix = "--trace-out=";
    if (a.rfind(prefix, 0) == 0) {
      a = "trace_out=" + a.substr(prefix.size());
    }
    arg_ptrs.push_back(a.data());
  }
  argv = arg_ptrs.data();

  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);

  // Reject typos up front, naming the offending key next to the full
  // accepted list — a mistyped knob must never silently run the default.
  const std::vector<std::string>& driver_keys = sim::ppf_sim_driver_keys();
  const std::string unknown = sim::first_unknown_key(params, driver_keys);
  if (!unknown.empty()) {
    std::cerr << "unknown key: " << unknown << "\n\n";
    return usage(argv[0]);
  }

  const std::string bench = params.get_string("bench", "mcf");
  const std::string trace_path = params.get_string("trace", "");
  const bool csv = params.get_bool("csv", false);
  const bool show_config = params.get_bool("config", true);
  const bool trace_cache = params.get_bool("trace_cache", true);
  const bool warmup_share = params.get_bool("warmup_share", false);
  const std::string trace_out = params.get_string("trace_out", "");
  const std::string timeseries_out = params.get_string("timeseries_out", "");
  std::uint64_t sample_interval = 0;
  bool obs_on = false;
  try {
    sample_interval = params.get_u64("sample_interval", 0);
    obs_on = params.get_bool("obs", false) || !trace_out.empty() ||
             !timeseries_out.empty() || sample_interval > 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (!timeseries_out.empty() && sample_interval == 0) {
    sample_interval = 50'000;
  }

  // Strip driver-only keys before handing the rest to the machine config.
  ParamMap machine;
  for (const auto& [k, v] : params.entries()) {
    if (std::find(driver_keys.begin(), driver_keys.end(), k) ==
        driver_keys.end()) {
      machine.set(k, v);
    }
  }

  sim::SimConfig cfg = sim::SimConfig::paper_default();
  cfg.max_instructions = 1'000'000;
  try {
    sim::apply_overrides(cfg, machine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  cfg.obs.enabled = obs_on;
  cfg.obs.sample_interval = sample_interval;

  std::unique_ptr<workload::TraceSource> source;
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 1;
    }
    try {
      source = std::make_unique<workload::VectorTrace>(
          workload::read_trace(in), trace_path);
    } catch (const std::exception& e) {
      std::cerr << "bad trace file: " << e.what() << "\n";
      return 1;
    }
    cfg.warmup_instructions = 0;  // finite traces: measure everything
  } else {
    try {
      source = workload::make_benchmark(bench, cfg.seed);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return usage(argv[0]);
    }
  }

  sim::SimResult r;
  try {
    // Named benchmarks can run through the materialized-arena (and, on
    // request, warmup-snapshot) hot path; captured trace files are
    // already in memory as a VectorTrace and gain nothing from
    // materializing.
    if (trace_cache && trace_path.empty()) {
      const std::uint64_t warmup =
          cfg.warmup_instructions < cfg.max_instructions
              ? cfg.warmup_instructions
              : 0;
      const auto arena =
          workload::materialize(*source, cfg.max_instructions + warmup);
      std::shared_ptr<const sim::WarmupSnapshot> snap;
      if (warmup_share) snap = sim::make_warmup_snapshot(cfg, arena);
      if (snap != nullptr) {
        r = sim::run_from_snapshot(cfg, *snap);
      } else {
        workload::TraceCursor cursor(arena);
        r = sim::Simulator(cfg).run(cursor);
      }
    } else {
      r = sim::Simulator(cfg).run(*source);
    }
  } catch (const check::CheckViolation& v) {
    // check=final/paranoid found corrupted machine state: report the
    // structured failure (component path, invariant ID, cycle) and fail
    // the run cleanly — docs/CHECKING.md lists every invariant.
    std::cerr << v.failure().format() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "simulation failed: " << e.what() << "\n";
    return 1;
  }

  // Observability sinks. A path ending in .jsonl selects the line-based
  // ppf.trace.v1 format; anything else gets Chrome/Perfetto trace_event
  // JSON (load it at ui.perfetto.dev or chrome://tracing).
  if (r.observation != nullptr) {
    const obs::ExportMeta meta{r.workload, r.filter_name};
    if (!trace_out.empty()) {
      std::ofstream f(trace_out);
      if (!f) {
        std::cerr << "cannot open " << trace_out << " for writing\n";
        return 1;
      }
      const bool jsonl = trace_out.size() >= 6 &&
                         trace_out.rfind(".jsonl") == trace_out.size() - 6;
      if (jsonl) {
        obs::write_trace_jsonl(f, *r.observation, meta);
      } else {
        obs::write_trace_chrome(f, *r.observation, meta);
      }
    }
    if (!timeseries_out.empty()) {
      std::ofstream f(timeseries_out);
      if (!f) {
        std::cerr << "cannot open " << timeseries_out << " for writing\n";
        return 1;
      }
      obs::write_timeseries_json(f, *r.observation, meta);
    }
  }

  if (csv) {
    sim::result_table(r).write_csv(std::cout);
  } else {
    if (show_config) {
      sim::print_config(std::cout, cfg);
      std::cout << "\n";
    }
    sim::print_result(std::cout, r);
    if (r.observation != nullptr) {
      const obs::RunObservation& o = *r.observation;
      std::cout << "\nobservability:\n  trace events        "
                << o.events.size();
      if (o.dropped_events > 0) {
        std::cout << " (+" << o.dropped_events << " dropped)";
      }
      std::cout << "\n  issued/filtered     "
                << o.event_counts[static_cast<std::size_t>(
                       obs::EventKind::Issued)]
                << " / "
                << o.event_counts[static_cast<std::size_t>(
                       obs::EventKind::Filtered)]
                << "\n  fills               "
                << o.event_counts[static_cast<std::size_t>(
                       obs::EventKind::Fill)]
                << "\n  first-use/dead-evict "
                << o.event_counts[static_cast<std::size_t>(
                       obs::EventKind::FirstUse)]
                << " / "
                << o.event_counts[static_cast<std::size_t>(
                       obs::EventKind::EvictDead)]
                << "\n  timeseries rows     " << o.timeseries.rows.size()
                << "\n";
    }
  }
  return 0;
}
