// ppf_sim — the standalone simulator driver.
//
// Runs one workload (a named Table 2 benchmark or a captured .ppftrace
// file) on a fully configurable machine and prints the complete result,
// optionally as CSV for scripting.
//
//   ppf_sim bench=mcf filter=pc instructions=2000000
//   ppf_sim trace=/tmp/app.ppftrace filter=pa csv=1
//   ppf_sim help=1
#include <fstream>
#include <iostream>

#include "common/config.hpp"
#include "sim/config_apply.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "workload/benchmarks.hpp"
#include "workload/materialized.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [bench=<name>|trace=<file>] "
            << "[csv=0|1] [config=0|1] [trace_cache=0|1] [warmup_share=0|1] "
            << "[key=value ...]\n\n"
            << "  trace_cache=0|1  — pre-materialize the benchmark trace and "
               "run from the arena (default 1; results identical)\n"
            << "  warmup_share=0|1 — exercise the warmup-snapshot path: pause "
               "at the warmup boundary, clone, resume (default 0; results "
               "identical, needs trace_cache=1)\n\nworkloads:";
  for (const std::string& n : workload::benchmark_names()) {
    std::cerr << " " << n;
  }
  std::cerr << "\n\nmachine keys:\n";
  for (const sim::OverrideDoc& d : sim::override_docs()) {
    std::cerr << "  " << d.key << " — " << d.help << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);

  // Reject typos up front, naming the offending key next to the full
  // accepted list — a mistyped knob must never silently run the default.
  const std::string unknown = sim::first_unknown_key(
      params, {"bench", "trace", "csv", "config", "trace_cache",
               "warmup_share", "help"});
  if (!unknown.empty()) {
    std::cerr << "unknown key: " << unknown << "\n\n";
    return usage(argv[0]);
  }

  const std::string bench = params.get_string("bench", "mcf");
  const std::string trace_path = params.get_string("trace", "");
  const bool csv = params.get_bool("csv", false);
  const bool show_config = params.get_bool("config", true);
  const bool trace_cache = params.get_bool("trace_cache", true);
  const bool warmup_share = params.get_bool("warmup_share", false);

  // Strip driver-only keys before handing the rest to the machine config.
  ParamMap machine;
  for (const auto& [k, v] : params.entries()) {
    if (k != "bench" && k != "trace" && k != "csv" && k != "config" &&
        k != "trace_cache" && k != "warmup_share" && k != "help") {
      machine.set(k, v);
    }
  }

  sim::SimConfig cfg = sim::SimConfig::paper_default();
  cfg.max_instructions = 1'000'000;
  try {
    sim::apply_overrides(cfg, machine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }

  std::unique_ptr<workload::TraceSource> source;
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 1;
    }
    try {
      source = std::make_unique<workload::VectorTrace>(
          workload::read_trace(in), trace_path);
    } catch (const std::exception& e) {
      std::cerr << "bad trace file: " << e.what() << "\n";
      return 1;
    }
    cfg.warmup_instructions = 0;  // finite traces: measure everything
  } else {
    try {
      source = workload::make_benchmark(bench, cfg.seed);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return usage(argv[0]);
    }
  }

  sim::SimResult r;
  // Named benchmarks can run through the materialized-arena (and, on
  // request, warmup-snapshot) hot path; captured trace files are already
  // in memory as a VectorTrace and gain nothing from materializing.
  if (trace_cache && trace_path.empty()) {
    const std::uint64_t warmup =
        cfg.warmup_instructions < cfg.max_instructions
            ? cfg.warmup_instructions
            : 0;
    const auto arena =
        workload::materialize(*source, cfg.max_instructions + warmup);
    std::shared_ptr<const sim::WarmupSnapshot> snap;
    if (warmup_share) snap = sim::make_warmup_snapshot(cfg, arena);
    if (snap != nullptr) {
      r = sim::run_from_snapshot(cfg, *snap);
    } else {
      workload::TraceCursor cursor(arena);
      r = sim::Simulator(cfg).run(cursor);
    }
  } else {
    r = sim::Simulator(cfg).run(*source);
  }

  if (csv) {
    sim::result_table(r).write_csv(std::cout);
  } else {
    if (show_config) {
      sim::print_config(std::cout, cfg);
      std::cout << "\n";
    }
    sim::print_result(std::cout, r);
  }
  return 0;
}
