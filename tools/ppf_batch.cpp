// ppf_batch — parallel sweep driver on the runlab subsystem.
//
// Expands a (benchmark x filter x seed) grid over a fully configurable
// machine, runs it on a worker pool, and writes the ordered results as
// JSON (and optionally CSV). Output is byte-identical for any jobs=N;
// telemetry and the live progress line go to stderr.
//
//   ppf_batch bench=mcf,em3d,gzip filter=none,pa,pc,adaptive seeds=4
//             jobs=8 out=results.json  (one line)
//   ppf_batch bench=all filter=none,pc csv=results.csv instructions=500000
//   ppf_batch help=1
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/config.hpp"
#include "common/shutdown.hpp"
#include "obs/export.hpp"
#include "registry/registry.hpp"
#include "runlab/runner.hpp"
#include "runlab/sinks.hpp"
#include "sim/config_apply.hpp"
#include "workload/benchmarks.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [key=value ...]\n\n"
      << "sweep keys:\n"
      << "  bench=a,b,...   — benchmarks to run, or 'all' (default all)\n"
      << "  filter=a,b,...  — filter registry keys (default none,pa,pc)\n"
      << "  seeds=N         — N seeds: base seed, base+1, ... (default 1)\n"
      << "  seed_list=a,b   — explicit seed values (overrides seeds=)\n"
      << "execution keys:\n"
      << "  jobs=N          — worker threads (default: hardware threads)\n"
      << "  timeout_ms=X    — soft per-job timeout; overruns become error "
         "records\n"
      << "  progress=auto|0|1|plain|fancy — stderr progress style. auto "
         "(default) picks fancy (\\r rewrites + heartbeats) on a TTY and "
         "plain (one completion line per job, no control sequences) "
         "otherwise; 0 silences it\n"
      << "  trace_cache=0|1 — materialize each distinct trace once and share "
         "it across jobs (default 1; results identical either way)\n"
      << "  warmup_share=0|1 — run warmup once per distinct warmup-relevant "
         "config and clone the warm machine into matching jobs (default 1; "
         "results identical either way)\n"
      << "  trace_cache_mb=N — LRU byte budget for resident trace arenas "
         "(default 0 = unbounded; eviction never changes results)\n"
      << "  snapshot_cache_mb=N — LRU byte budget for warmup snapshots "
         "(default 0 = unbounded)\n"
      << "  cancel_after=N  — request shutdown after N completed jobs "
         "(deterministic stand-in for SIGINT/SIGTERM; remaining jobs "
         "become cancelled records, sinks still flush, exit stays 0)\n"
      << "output keys:\n"
      << "  out=PATH|-      — ordered JSON results (default '-' = stdout)\n"
      << "  csv=PATH        — also write CSV\n"
      << "  telemetry_json=PATH (or --telemetry-json=PATH) — wall-clock "
         "throughput telemetry (ppf.telemetry.v1 / BENCH_throughput.json "
         "schema)\n"
      << "observability keys (see docs/OBSERVABILITY.md):\n"
      << "  obs=0|1         — per-job metrics recording (implied by the "
         "sinks below)\n"
      << "  trace_out=PREFIX (or --trace-out=PREFIX) — per-job lifecycle "
         "trace files PREFIX.<index>.json (Chrome trace_event; .jsonl "
         "prefix suffix selects ppf.trace.v1 lines)\n"
      << "  timeseries_out=PREFIX — per-job interval metrics "
         "PREFIX.<index>.timeseries.json (ppf.timeseries.v1)\n"
      << "  sample_interval=N — cycles per time-series row (default 50000 "
         "when timeseries_out is set)\n"
      << "\n--progress is shorthand for progress=1; with it the stderr "
         "line also carries live MIPS/ETA heartbeats mid-job\n"
      << "\nworkloads:";
  for (const std::string& n : workload::benchmark_names()) {
    std::cerr << " " << n;
  }
  std::cerr << "\n\nmachine keys:\n";
  for (const sim::OverrideDoc& d : sim::override_docs()) {
    std::cerr << "  " << d.key << " — " << d.help << "\n";
  }
  return 2;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept GNU-style spellings for a few flags so CI scripts can say
  // --telemetry-json=out.json / --trace-out=pfx / --progress; everything
  // else is key=value.
  std::vector<std::string> arg_storage(argv, argv + argc);
  std::vector<char*> arg_ptrs;
  for (std::string& a : arg_storage) {
    const std::string telemetry_prefix = "--telemetry-json=";
    const std::string trace_prefix = "--trace-out=";
    const std::string progress_prefix = "--progress=";
    if (a.rfind(telemetry_prefix, 0) == 0) {
      a = "telemetry_json=" + a.substr(telemetry_prefix.size());
    } else if (a.rfind(trace_prefix, 0) == 0) {
      a = "trace_out=" + a.substr(trace_prefix.size());
    } else if (a.rfind(progress_prefix, 0) == 0) {
      a = "progress=" + a.substr(progress_prefix.size());
    } else if (a == "--progress") {
      a = "progress=1";
    }
    arg_ptrs.push_back(a.data());
  }
  argv = arg_ptrs.data();

  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);

  const std::vector<std::string>& driver_keys = sim::ppf_batch_driver_keys();
  const std::string unknown = sim::first_unknown_key(params, driver_keys);
  if (!unknown.empty()) {
    std::cerr << "unknown key: " << unknown << "\n\n";
    return usage(argv[0]);
  }

  // Machine config: every non-driver key is an override on Table 1.
  ParamMap machine;
  for (const auto& [k, v] : params.entries()) {
    if (std::find(driver_keys.begin(), driver_keys.end(), k) ==
        driver_keys.end()) {
      machine.set(k, v);
    }
  }
  runlab::SweepSpec spec;
  spec.base = sim::SimConfig::paper_default();
  spec.base.max_instructions = 1'000'000;
  try {
    sim::apply_overrides(spec.base, machine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }

  // Benchmark axis.
  const std::string bench = params.get_string("bench", "all");
  if (bench == "all") {
    spec.benchmarks = workload::benchmark_names();
  } else {
    spec.benchmarks = split_list(bench);
  }
  if (spec.benchmarks.empty()) {
    std::cerr << "bench= selected no benchmarks\n";
    return usage(argv[0]);
  }

  // Filter axis: every name must be a registered filter key so a typo
  // fails here (exit 2, with the valid values) instead of mid-batch.
  for (const std::string& f :
       split_list(params.get_string("filter", "none,pa,pc"))) {
    if (!registry::has_filter(f)) {
      std::cerr << "unknown filter '" << f
                << "' (valid: " << registry::valid_filter_values() << ")\n";
      return usage(argv[0]);
    }
    spec.filters.push_back(f);
  }

  // Seed axis: explicit list wins over a count anchored at the base seed.
  try {
    if (params.has("seed_list")) {
      for (const std::string& s :
           split_list(params.get_string("seed_list", ""))) {
        spec.seeds.push_back(std::stoull(s));
      }
    } else {
      const std::uint64_t n = params.get_u64("seeds", 1);
      for (std::uint64_t i = 0; i < n; ++i) {
        spec.seeds.push_back(spec.base.seed + i);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad seed list: " << e.what() << "\n";
    return usage(argv[0]);
  }

  // Observability knobs apply to every expanded job via the sweep base.
  const std::string trace_out = params.get_string("trace_out", "");
  const std::string timeseries_out = params.get_string("timeseries_out", "");
  try {
    std::uint64_t sample_interval = params.get_u64("sample_interval", 0);
    if (!timeseries_out.empty() && sample_interval == 0) {
      sample_interval = 50'000;
    }
    spec.base.obs.enabled = params.get_bool("obs", false) ||
                            !trace_out.empty() || !timeseries_out.empty() ||
                            sample_interval > 0;
    spec.base.obs.sample_interval = sample_interval;
    // Keeping every job's full event stream in memory is only worth it
    // when a trace sink asked for it; aggregate event counts (cheap) are
    // always recorded while obs is on.
    spec.base.obs.capture_events = !trace_out.empty();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }

  runlab::RunOptions opts;
  std::string progress = "auto";
  std::uint64_t cancel_after = 0;
  try {
    opts.workers = params.get_u64("jobs", 0);
    opts.job_timeout_ms = params.get_double("timeout_ms", 0.0);
    opts.trace_cache = params.get_bool("trace_cache", true);
    opts.warmup_share = params.get_bool("warmup_share", true);
    opts.trace_cache_mb = params.get_u64("trace_cache_mb", 0);
    opts.snapshot_cache_mb = params.get_u64("snapshot_cache_mb", 0);
    cancel_after = params.get_u64("cancel_after", 0);
    progress = params.get_string("progress", "auto");
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  // Resolve the progress style: fancy (in-place \r rewrites and mid-job
  // heartbeats) belongs on a terminal; a redirected stderr gets plain
  // newline-terminated lines with no control sequences, so logs stay
  // greppable. auto/1 ask the TTY; plain/fancy force a style.
  if (progress == "1" || progress == "auto") {
    progress = ::isatty(STDERR_FILENO) != 0 ? "fancy" : "plain";
  }
  if (progress != "0" && progress != "plain" && progress != "fancy") {
    std::cerr << "progress= must be auto, 0, 1, plain, or fancy\n";
    return usage(argv[0]);
  }

  // Graceful SIGINT/SIGTERM: in-flight jobs drain, unstarted jobs become
  // cancelled records, every sink still flushes, and a cancelled-only
  // batch exits 0. cancel_after=N trips the identical path after N
  // completions, so the contract is testable without delivering signals.
  ShutdownRequest shutdown;
  shutdown.install_signal_handlers();
  opts.cancel = [&shutdown] { return shutdown.requested(); };

  if (progress == "fancy") {
    // Completion events and mid-job heartbeats share one stderr status
    // line; both rewrite it in place with \r.
    auto ui_mu = std::make_shared<std::mutex>();
    opts.on_progress = [ui_mu](const runlab::Progress& p) {
      std::lock_guard<std::mutex> lk(*ui_mu);
      std::cerr << "\r[" << p.done << "/" << p.total << "] ";
      if (p.failed > 0) std::cerr << p.failed << " failed, ";
      std::cerr << "last: " << p.last->job.benchmark << "/"
                << p.last->job.filter_name << "/s" << p.last->job.seed
                << "          " << std::flush;
      if (p.done == p.total) std::cerr << "\n";
    };
    opts.on_heartbeat = [ui_mu](const runlab::Heartbeat& hb) {
      if (hb.done == hb.total) return;  // final line belongs to on_progress
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "\r[%zu/%zu] %.1f MI of %.1f MI (%.1f MIPS, eta %.0fs)"
                    "          ",
                    hb.done, hb.total,
                    static_cast<double>(hb.instructions) / 1e6,
                    static_cast<double>(hb.expected_instructions) / 1e6,
                    hb.mips, hb.eta_s);
      std::lock_guard<std::mutex> lk(*ui_mu);
      std::cerr << buf << std::flush;
    };
  } else if (progress == "plain") {
    // One full line per completion, no \r/ANSI, no wall-clock content —
    // with jobs=1 the stream is deterministic (pinned by
    // tests/cli/batch_progress_test.sh). Heartbeats are periodic and
    // wall-clock flavored, so plain mode leaves them unwired.
    opts.on_progress = [](const runlab::Progress& p) {
      std::cerr << "[" << p.done << "/" << p.total << "] "
                << p.last->job.benchmark << "/" << p.last->job.filter_name
                << "/s" << p.last->job.seed;
      if (!p.last->ok) {
        std::cerr << (p.last->cancelled ? " cancelled" : " FAILED");
      }
      std::cerr << "\n";
    };
  }
  if (cancel_after > 0) {
    // Chain after the style's own progress callback so the hook works in
    // every mode, including progress=0.
    auto inner = opts.on_progress;
    opts.on_progress = [inner, cancel_after,
                        &shutdown](const runlab::Progress& p) {
      if (inner) inner(p);
      if (p.done >= cancel_after) shutdown.request();
    };
  }

  const runlab::RunReport rep = runlab::run_sweep(spec, opts);
  runlab::print_telemetry(std::cerr, rep.telemetry);

  const std::string out = params.get_string("out", "-");
  if (out == "-") {
    runlab::write_json(std::cout, rep);
  } else {
    std::ofstream f(out);
    if (!f) {
      std::cerr << "cannot open " << out << " for writing\n";
      return 1;
    }
    runlab::write_json(f, rep);
  }
  const std::string csv = params.get_string("csv", "");
  if (!csv.empty()) {
    std::ofstream f(csv);
    if (!f) {
      std::cerr << "cannot open " << csv << " for writing\n";
      return 1;
    }
    runlab::write_csv(f, rep);
  }
  const std::string telemetry = params.get_string("telemetry_json", "");
  if (!telemetry.empty()) {
    std::ofstream f(telemetry);
    if (!f) {
      std::cerr << "cannot open " << telemetry << " for writing\n";
      return 1;
    }
    runlab::write_telemetry_json(f, rep);
  }

  // Per-job observability sinks: PREFIX.<submission-index>.<ext>. The
  // index is the stable job identity (results are in submission order),
  // so filenames are deterministic for any jobs=N.
  if (!trace_out.empty() || !timeseries_out.empty()) {
    const auto split_prefix = [](const std::string& p, bool& jsonl) {
      jsonl = p.size() >= 6 && p.rfind(".jsonl") == p.size() - 6;
      if (jsonl) return p.substr(0, p.size() - 6);
      if (p.size() >= 5 && p.rfind(".json") == p.size() - 5) {
        return p.substr(0, p.size() - 5);
      }
      return p;
    };
    for (const runlab::JobResult& jr : rep.results) {
      if (!jr.ok || jr.result.observation == nullptr) continue;
      const obs::ExportMeta meta{jr.result.workload, jr.result.filter_name};
      const std::string idx = std::to_string(jr.job.index);
      if (!trace_out.empty()) {
        bool jsonl = false;
        const std::string base = split_prefix(trace_out, jsonl);
        const std::string path =
            base + "." + idx + (jsonl ? ".jsonl" : ".json");
        std::ofstream f(path);
        if (!f) {
          std::cerr << "cannot open " << path << " for writing\n";
          return 1;
        }
        if (jsonl) {
          obs::write_trace_jsonl(f, *jr.result.observation, meta);
        } else {
          obs::write_trace_chrome(f, *jr.result.observation, meta);
        }
      }
      if (!timeseries_out.empty()) {
        bool jsonl = false;
        const std::string base = split_prefix(timeseries_out, jsonl);
        // Distinct suffix so trace_out and timeseries_out can share one
        // prefix without the later write clobbering the earlier one.
        const std::string path = base + "." + idx + ".timeseries.json";
        std::ofstream f(path);
        if (!f) {
          std::cerr << "cannot open " << path << " for writing\n";
          return 1;
        }
        obs::write_timeseries_json(f, *jr.result.observation, meta);
      }
    }
  }
  return rep.telemetry.failed_jobs == 0 ? 0 : 1;
}
