// ppf_load — closed-loop load generator for a running ppf_serve daemon.
//
// Drives `requests` total run-requests through `connections` concurrent
// connections, cycling the given config strings round-robin, then
// reports throughput, client-observed latency percentiles, memo hit
// counts, and byte-identity verification (every repeat of a config must
// return the exact bytes of its first response).
//
//   ppf_load port=7077 connections=8 requests=1000
//            config="bench=mcf filter=pc instructions=200000"
//   ppf_load port=7077 configs="bench=mcf;bench=em3d filter=pa" shutdown=1
//
// Exit 0 only when every request succeeded and no byte mismatch was
// seen — the soak gate CI relies on.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "serve/load.hpp"
#include "serve/protocol.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " port=N [key=value ...]\n\n"
      << "keys:\n"
      << "  host=ADDR       — daemon address (default 127.0.0.1)\n"
      << "  port=N          — daemon port (required)\n"
      << "  connections=N   — concurrent connections (default 4)\n"
      << "  requests=N      — total run requests (default 100)\n"
      << "  config=STR      — one config string (same key=value grammar "
         "as ppf_batch; quote the spaces)\n"
      << "  configs=A;B;... — several config strings, ';'-separated, "
         "cycled round-robin (overrides config=)\n"
      << "  verify=0|1      — byte-identity check across repeats "
         "(default 1)\n"
      << "  stats=0|1       — fetch and print the daemon stats snapshot "
         "after the run (default 1)\n"
      << "  shutdown=0|1    — send the shutdown verb when done "
         "(default 0)\n"
      << "  warmup_requests=N — exclude the first N requests from the "
         "latency percentiles (default 0)\n"
      << "  scrape=VERB     — one-shot mode: send VERB (metrics, stats, "
         "dump, shutdown) and print the response; for metrics and dump "
         "the raw body is printed\n";
  return 2;
}

/// scrape= one-shot: fetch a single verb instead of running a load.
/// metrics/dump responses carry their payload in a "body" field — print
/// it raw so the output pipes straight into a Prometheus scraper or a
/// JSONL consumer; everything else prints the raw response line.
int run_scrape(const serve::LoadOptions& opts, const std::string& verb) {
  std::string response;
  try {
    response = serve::fetch_verb(opts.host, opts.port, verb);
  } catch (const std::exception& e) {
    std::cerr << "ppf_load: " << e.what() << "\n";
    return 1;
  }
  if (verb == "metrics" || verb == "dump") {
    const serve::ParseResult parsed = serve::parse_request(response);
    if (!parsed.ok) {
      std::cerr << "ppf_load: unparsable " << verb
                << " response: " << response << "\n";
      return 1;
    }
    if (parsed.req.verb == "error") {
      std::cerr << "ppf_load: " << response << "\n";
      return 1;
    }
    const auto body = parsed.req.fields.find("body");
    if (body == parsed.req.fields.end()) {
      std::cerr << "ppf_load: " << verb
                << " response has no body: " << response << "\n";
      return 1;
    }
    std::cout << body->second;
    return 0;
  }
  std::cout << response << "\n";
  return 0;
}

std::vector<std::string> split_configs(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ';')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);
  const std::vector<std::string> known = {
      "host",   "port",  "connections", "requests", "config",
      "configs", "verify", "stats",      "shutdown", "warmup_requests",
      "scrape"};
  for (const auto& [k, v] : params.entries()) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      std::cerr << "unknown key: " << k << "\n\n";
      return usage(argv[0]);
    }
  }

  serve::LoadOptions opts;
  std::string scrape;
  try {
    opts.host = params.get_string("host", "127.0.0.1");
    opts.port = static_cast<std::uint16_t>(params.get_u64("port", 0));
    opts.connections = params.get_u64("connections", 4);
    opts.requests = params.get_u64("requests", 100);
    opts.verify_bytes = params.get_bool("verify", true);
    opts.fetch_stats = params.get_bool("stats", true);
    opts.send_shutdown = params.get_bool("shutdown", false);
    opts.warmup_requests = params.get_u64("warmup_requests", 0);
    scrape = params.get_string("scrape", "");
    const std::string many = params.get_string("configs", "");
    if (!many.empty()) {
      opts.configs = split_configs(many);
    } else {
      opts.configs.push_back(params.get_string(
          "config", "bench=mcf filter=pc instructions=200000"));
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (opts.port == 0) {
    std::cerr << "port= is required\n\n";
    return usage(argv[0]);
  }
  if (!scrape.empty()) return run_scrape(opts, scrape);

  serve::LoadReport rep;
  try {
    rep = serve::run_load(opts);
  } catch (const std::exception& e) {
    std::cerr << "ppf_load: " << e.what() << "\n";
    return 1;
  }
  std::cout << serve::describe(rep);
  if (opts.fetch_stats && !rep.stats_json.empty()) {
    std::cout << "stats: " << rep.stats_json << "\n";
  }
  return rep.errors == 0 && rep.byte_mismatches == 0 &&
                 rep.sent == opts.requests
             ? 0
             : 1;
}
