// ppf_lint — project-convention linter for the ppf tree.
//
// Since the ppf::analyze engine landed, ppf_lint is a thin
// compatibility wrapper: the ten original rules now run on the shared
// token-stream analyzer (src/analyze) instead of per-line regexes, but
// this CLI keeps its contract byte-for-byte — same flags, same human
// and --json output shapes, same exit codes — so scripts, CI legs, and
// fixture tests keep working unchanged. New rules (layers, taint,
// locks) are ppf_analyze's business; this tool never emits them.
//
//   no-bare-assert        C assert()/<cassert> bypass the PPF_ASSERT
//                         ladder (common/assert.hpp).
//   no-wallclock-rand     rand()/srand()/std::time()/random_device/
//                         system_clock in src/ break run determinism
//                         (steady_clock is allowed — telemetry only).
//   obs-check-parity      a header declaring a register_obs hook must
//                         also declare register_checks.
//   config-key-docs       every key in sim::override_docs() must be
//                         documented in docs/*.md or README.md.
//   obs-event-bookkeeping a PPF_OBS_EVENT probe for a classifier-shaped
//                         lifecycle kind must sit next to the matching
//                         classifier record_* call.
//   invariant-id-docs     invariant IDs at require()/fail()/CheckFailure
//                         sites must be documented in docs/CHECKING.md.
//   diff-oracle-docs      diff.* oracle IDs must appear in docs/DIFF.md.
//   serve-verb-docs       protocol verbs and error codes must appear in
//                         docs/SERVE.md.
//   hot-loop-no-virtual   no `virtual` / abstract-interface calls inside
//                         // ppf:hot regions.
//   span-name-docs        span names must appear in docs/OBSERVABILITY.md.
//
// Usage: ppf_lint [--root DIR] [--json] [--expect-violations]
//                 [--list-rules]
// Exit:  0 clean (or, under --expect-violations, at least one finding)
//        1 findings (or, under --expect-violations, none)
//        2 usage or I/O error
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/engine.hpp"
#include "analyze/report.hpp"

namespace fs = std::filesystem;

namespace {

struct Rule {
  const char* name;
  const char* help;
};

// The historical --list-rules order, preserved.
constexpr Rule kRules[] = {
    {"no-bare-assert",
     "use PPF_ASSERT/PPF_CHECK (common/assert.hpp), not assert()/<cassert>"},
    {"no-wallclock-rand",
     "no rand/srand/std::time/random_device/system_clock in src/"},
    {"obs-check-parity",
     "headers declaring register_obs must also declare register_checks"},
    {"config-key-docs",
     "every override_docs() key must appear in docs/*.md or README.md"},
    {"obs-event-bookkeeping",
     "classifier-shaped PPF_OBS_EVENT probes need the matching record_* "
     "call within 8 lines"},
    {"invariant-id-docs",
     "invariant IDs at require()/fail()/CheckFailure sites must appear in "
     "docs/CHECKING.md"},
    {"diff-oracle-docs",
     "diff.* oracle IDs in src/diff must appear in docs/DIFF.md"},
    {"serve-verb-docs",
     "serve protocol verbs and error codes must appear in docs/SERVE.md"},
    {"hot-loop-no-virtual",
     "no `virtual` or abstract-interface calls inside // ppf:hot regions"},
    {"span-name-docs",
     "every span name in obs::span_name_docs() must appear in "
     "docs/OBSERVABILITY.md"},
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  bool expect_violations = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--expect-violations") {
      expect_violations = true;
    } else if (arg == "--list-rules") {
      for (const Rule& r : kRules) {
        std::cout << r.name << ": " << r.help << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ppf_lint [--root DIR] [--json] "
                   "[--expect-violations] [--list-rules]\n";
      return 0;
    } else {
      std::cerr << "ppf_lint: unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (!fs::exists(root)) {
    std::cerr << "ppf_lint: no such directory: " << root.string() << "\n";
    return 2;
  }
  root = fs::canonical(root);

  const std::vector<ppf::analyze::Diagnostic> findings =
      ppf::analyze::analyze_tree(root, ppf::analyze::legacy_lint_rules());

  if (json) {
    ppf::analyze::print_legacy_json(std::cout, findings);
  } else {
    ppf::analyze::print_legacy_human(std::cout, findings);
  }
  if (expect_violations) {
    if (findings.empty()) {
      std::cerr << "ppf_lint: expected violations, found none\n";
      return 1;
    }
    return 0;
  }
  if (!findings.empty()) {
    std::cerr << "ppf_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
