// ppf_lint — project-convention linter for the ppf tree.
//
// Token/regex-level checks over src/ (deliberately NOT a libclang tool:
// it must build and run anywhere the simulator builds, with zero extra
// dependencies). Each rule encodes a convention the codebase relies on
// but the compiler cannot enforce:
//
//   no-bare-assert        C assert()/<cassert> bypass the PPF_ASSERT
//                         ladder (common/assert.hpp), losing the
//                         formatted message and the release-mode
//                         expression type-check.
//   no-wallclock-rand     rand()/srand()/std::time()/random_device/
//                         system_clock in src/ break run determinism
//                         (common/random.hpp is the only sanctioned
//                         randomness; steady_clock is allowed — it only
//                         feeds telemetry).
//   obs-check-parity      a header declaring a register_obs hook must
//                         also declare register_checks: observable
//                         components are checkable components.
//   config-key-docs       every key in sim::override_docs() must be
//                         documented in docs/*.md or README.md.
//   obs-event-bookkeeping a PPF_OBS_EVENT probe for a classifier-shaped
//                         lifecycle kind (Issued/Filtered/Squashed/
//                         Evict*) must sit next to the matching
//                         classifier record_* call — the obs stream and
//                         the counters must not drift apart.
//   invariant-id-docs     every invariant ID string used at a
//                         ctx.require()/ctx.fail()/CheckFailure site
//                         must be documented in docs/CHECKING.md.
//   serve-verb-docs       every protocol verb in serve::verb_docs() and
//                         every error code in error_code_docs() must be
//                         documented in docs/SERVE.md.
//   hot-loop-no-virtual   inside a region marked `// ppf:hot` (until
//                         `// ppf:cold` or EOF) the code must not
//                         declare anything `virtual` and must not call
//                         through a variable declared with an abstract
//                         interface type (DataMemory/InstMemory/
//                         TraceSource/Prefetcher/PollutionFilter/
//                         CoreEngine) — the batched stage kernels'
//                         speedup rests on devirtualized concrete calls,
//                         and a casual refactor must not quietly
//                         reintroduce dispatch into the cycle loop.
//
// Usage: ppf_lint [--root DIR] [--json] [--expect-violations]
//                 [--list-rules]
// Exit:  0 clean (or, under --expect-violations, at least one finding)
//        1 findings (or, under --expect-violations, none)
//        2 usage or I/O error
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string rule;
  std::string file;  // repo-relative, '/' separators
  std::size_t line;  // 1-based; 0 = whole file
  std::string message;
};

struct Rule {
  const char* name;
  const char* help;
};

constexpr Rule kRules[] = {
    {"no-bare-assert",
     "use PPF_ASSERT/PPF_CHECK (common/assert.hpp), not assert()/<cassert>"},
    {"no-wallclock-rand",
     "no rand/srand/std::time/random_device/system_clock in src/"},
    {"obs-check-parity",
     "headers declaring register_obs must also declare register_checks"},
    {"config-key-docs",
     "every override_docs() key must appear in docs/*.md or README.md"},
    {"obs-event-bookkeeping",
     "classifier-shaped PPF_OBS_EVENT probes need the matching record_* "
     "call within 8 lines"},
    {"invariant-id-docs",
     "invariant IDs at require()/fail()/CheckFailure sites must appear in "
     "docs/CHECKING.md"},
    {"diff-oracle-docs",
     "diff.* oracle IDs in src/diff must appear in docs/DIFF.md"},
    {"serve-verb-docs",
     "serve protocol verbs and error codes must appear in docs/SERVE.md"},
    {"hot-loop-no-virtual",
     "no `virtual` or abstract-interface calls inside // ppf:hot regions"},
    {"span-name-docs",
     "every span name in obs::span_name_docs() must appear in "
     "docs/OBSERVABILITY.md"},
};

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string read_text(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string rel(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

/// Line is pure comment (// or a block-comment continuation). Good
/// enough at token level: mixed code+comment lines still get scanned.
bool comment_line(const std::string& s) {
  const std::size_t i = s.find_first_not_of(" \t");
  if (i == std::string::npos) return false;
  return s.compare(i, 2, "//") == 0 || s[i] == '*' ||
         s.compare(i, 2, "/*") == 0;
}

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// `word` present in `text` with non-identifier characters on both sides.
bool contains_word(const std::string& text, const std::string& word) {
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::vector<fs::path> source_files(const fs::path& src_root) {
  std::vector<fs::path> files;
  if (!fs::exists(src_root)) return files;
  for (const auto& e : fs::recursive_directory_iterator(src_root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// --- rule: no-bare-assert -------------------------------------------------

void check_bare_assert(const fs::path& file, const fs::path& root,
                       const std::vector<std::string>& lines,
                       std::vector<Finding>& out) {
  const std::string r = rel(file, root);
  if (r == "src/common/assert.hpp") return;  // the ladder itself
  static const std::regex bare(R"((^|[^_A-Za-z0-9>."])assert\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (comment_line(lines[i])) continue;
    if (lines[i].find("<cassert>") != std::string::npos) {
      out.push_back({"no-bare-assert", r, i + 1,
                     "<cassert> included; use common/assert.hpp"});
    }
    if (std::regex_search(lines[i], bare)) {
      out.push_back({"no-bare-assert", r, i + 1,
                     "bare assert(); use PPF_ASSERT/PPF_CHECK"});
    }
  }
}

// --- rule: no-wallclock-rand ----------------------------------------------

void check_wallclock_rand(const fs::path& file, const fs::path& root,
                          const std::vector<std::string>& lines,
                          std::vector<Finding>& out) {
  static const std::regex banned(
      R"(std::rand\s*\(|(^|[^_A-Za-z0-9:.])s?rand\s*\(|std::time\s*\(|random_device|system_clock)");
  const std::string r = rel(file, root);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (comment_line(lines[i])) continue;
    if (std::regex_search(lines[i], banned)) {
      out.push_back({"no-wallclock-rand", r, i + 1,
                     "non-deterministic source; use common/random.hpp "
                     "(steady_clock is fine for telemetry)"});
    }
  }
}

// --- rule: obs-check-parity -----------------------------------------------

void check_obs_parity(const fs::path& file, const fs::path& root,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& out) {
  if (file.extension() != ".hpp" && file.extension() != ".h") return;
  static const std::regex obs_decl(R"(register_obs\s*\()");
  static const std::regex chk_decl(R"(register_checks\s*\()");
  std::size_t obs_line = 0;
  bool has_checks = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (comment_line(lines[i])) continue;
    if (obs_line == 0 && std::regex_search(lines[i], obs_decl)) {
      obs_line = i + 1;
    }
    if (std::regex_search(lines[i], chk_decl)) has_checks = true;
  }
  if (obs_line != 0 && !has_checks) {
    out.push_back({"obs-check-parity", rel(file, root), obs_line,
                   "register_obs declared without register_checks"});
  }
}

// --- rule: config-key-docs ------------------------------------------------

void check_config_keys(const fs::path& root, std::vector<Finding>& out) {
  const fs::path apply = root / "src" / "sim" / "config_apply.cpp";
  if (!fs::exists(apply)) return;
  const std::vector<std::string> lines = read_lines(apply);

  std::string docs_text = read_text(root / "README.md");
  const fs::path docs_dir = root / "docs";
  if (fs::exists(docs_dir)) {
    std::vector<fs::path> docs;
    for (const auto& e : fs::directory_iterator(docs_dir)) {
      if (e.is_regular_file() && e.path().extension() == ".md") {
        docs.push_back(e.path());
      }
    }
    std::sort(docs.begin(), docs.end());
    for (const fs::path& d : docs) docs_text += read_text(d);
  }

  static const std::regex key_re(R"re(\{\s*"([A-Za-z0-9_]+)"\s*,)re");
  bool in_docs_fn = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("override_docs()") != std::string::npos &&
        lines[i].find('{') != std::string::npos) {
      in_docs_fn = true;
      continue;
    }
    if (!in_docs_fn) continue;
    if (lines[i].find("return docs;") != std::string::npos) break;
    std::smatch m;
    if (std::regex_search(lines[i], m, key_re) &&
        !contains_word(docs_text, m[1].str())) {
      out.push_back({"config-key-docs", rel(apply, root), i + 1,
                     "override key '" + m[1].str() +
                         "' not documented in docs/*.md or README.md"});
    }
  }
}

// --- rule: obs-event-bookkeeping ------------------------------------------

void check_event_bookkeeping(const fs::path& file, const fs::path& root,
                             const std::vector<std::string>& lines,
                             std::vector<Finding>& out) {
  const std::string r = rel(file, root);
  if (r.rfind("src/obs/", 0) == 0) return;  // the macro's own home
  static const std::map<std::string, std::string> pair = {
      {"EventKind::Issued", "record_issued"},
      {"EventKind::Filtered", "record_filtered"},
      {"EventKind::Squashed", "record_squashed"},
      {"EventKind::EvictReferenced", "record_outcome"},
      {"EventKind::EvictDead", "record_outcome"},
  };
  constexpr std::size_t kWindow = 8;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("PPF_OBS_EVENT(") == std::string::npos) continue;
    // The macro call may wrap; the kind argument sits within 3 lines.
    std::string call;
    for (std::size_t j = i; j < lines.size() && j < i + 4; ++j) {
      call += lines[j];
    }
    for (const auto& [kind, record] : pair) {
      if (call.find(kind) == std::string::npos) continue;
      const std::size_t lo = i >= kWindow ? i - kWindow : 0;
      const std::size_t hi = std::min(lines.size(), i + kWindow + 1);
      bool found = false;
      for (std::size_t j = lo; j < hi && !found; ++j) {
        found = lines[j].find(record + "(") != std::string::npos;
      }
      if (!found) {
        out.push_back({"obs-event-bookkeeping", r, i + 1,
                       kind + " probe without nearby classifier " + record +
                           "() call"});
      }
    }
  }
}

// --- rule: invariant-id-docs ----------------------------------------------

void check_invariant_ids(const fs::path& file, const fs::path& root,
                         const std::vector<std::string>& lines,
                         const std::string& checking_md,
                         std::vector<Finding>& out) {
  static const std::regex site(R"((require|fail)\s*\(|CheckFailure\{)");
  static const std::regex id_re(
      R"re("([a-z][a-z0-9_]*(\.[a-z][a-z0-9_.]*)+)")re");
  const std::string r = rel(file, root);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (comment_line(lines[i])) continue;
    if (!std::regex_search(lines[i], site)) continue;
    // Convention: the ID literal sits on the site line or within the
    // next two (continuation) lines.
    std::string span;
    for (std::size_t j = i; j < lines.size() && j < i + 3; ++j) {
      span += lines[j];
      span += '\n';
    }
    for (std::sregex_iterator it(span.begin(), span.end(), id_re), end;
         it != end; ++it) {
      const std::string id = (*it)[1].str();
      if (checking_md.find(id) == std::string::npos) {
        out.push_back({"invariant-id-docs", r, i + 1,
                       "invariant ID \"" + id +
                           "\" not documented in docs/CHECKING.md"});
      }
    }
  }
}

// --- rule: diff-oracle-docs -------------------------------------------------

void check_diff_oracle_ids(const fs::path& file, const fs::path& root,
                           const std::vector<std::string>& lines,
                           const std::string& diff_md,
                           std::vector<Finding>& out) {
  const std::string r = rel(file, root);
  if (r.rfind("src/diff/", 0) != 0) return;
  // Every "diff.xxx" string literal in the diff subsystem is an oracle
  // ID a user may see in a violation report — each must be explained in
  // the docs/DIFF.md catalogue.
  static const std::regex id_re(R"re("(diff\.[a-z][a-z0-9_.]*)")re");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (comment_line(lines[i])) continue;
    for (std::sregex_iterator it(lines[i].begin(), lines[i].end(), id_re),
         end;
         it != end; ++it) {
      const std::string id = (*it)[1].str();
      if (diff_md.find(id) == std::string::npos) {
        out.push_back({"diff-oracle-docs", r, i + 1,
                       "oracle ID \"" + id +
                           "\" not documented in docs/DIFF.md"});
      }
    }
  }
}

// --- rule: serve-verb-docs --------------------------------------------------

void check_serve_docs(const fs::path& root, std::vector<Finding>& out) {
  const fs::path proto = root / "src" / "serve" / "protocol.cpp";
  if (!fs::exists(proto)) return;
  const std::vector<std::string> lines = read_lines(proto);
  const std::string serve_md = read_text(root / "docs" / "SERVE.md");

  // Same shape as config-key-docs: walk each catalogue function's
  // initializer, pull the first string of every entry, and require it
  // word-for-word in docs/SERVE.md.
  static const std::regex entry_re(R"re(\{\s*"([a-z][a-z0-9_]*)"\s*,)re");
  const struct {
    const char* fn;
    const char* what;
  } tables[] = {{"verb_docs()", "verb"}, {"error_code_docs()", "error code"}};
  for (const auto& table : tables) {
    bool in_fn = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(table.fn) != std::string::npos &&
          lines[i].find('{') != std::string::npos) {
        in_fn = true;
        continue;
      }
      if (!in_fn) continue;
      if (lines[i].find("return docs;") != std::string::npos) break;
      std::smatch m;
      if (std::regex_search(lines[i], m, entry_re) &&
          !contains_word(serve_md, m[1].str())) {
        out.push_back({"serve-verb-docs", rel(proto, root), i + 1,
                       "protocol " + std::string(table.what) + " '" +
                           m[1].str() +
                           "' not documented in docs/SERVE.md"});
      }
    }
  }
}

// --- rule: span-name-docs ---------------------------------------------------

void check_span_docs(const fs::path& root, std::vector<Finding>& out) {
  const fs::path span = root / "src" / "obs" / "span.cpp";
  if (!fs::exists(span)) return;
  const std::vector<std::string> lines = read_lines(span);
  const std::string obs_md = read_text(root / "docs" / "OBSERVABILITY.md");

  // Same catalogue-scan shape as serve-verb-docs, over the span-name
  // catalogue. Span names are dotted ("serve.queue_wait"), so the entry
  // regex admits '.' where the protocol one does not.
  static const std::regex entry_re(R"re(\{\s*"([a-z][a-z0-9_.]*)"\s*,)re");
  bool in_fn = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("span_name_docs()") != std::string::npos &&
        lines[i].find('{') != std::string::npos) {
      in_fn = true;
      continue;
    }
    if (!in_fn) continue;
    if (lines[i].find("return docs;") != std::string::npos) break;
    std::smatch m;
    if (std::regex_search(lines[i], m, entry_re) &&
        !contains_word(obs_md, m[1].str())) {
      out.push_back({"span-name-docs", rel(span, root), i + 1,
                     "span name '" + m[1].str() +
                         "' not documented in docs/OBSERVABILITY.md"});
    }
  }
}

// --- rule: hot-loop-no-virtual ----------------------------------------------

void check_hot_loop_virtual(const fs::path& file, const fs::path& root,
                            const std::vector<std::string>& lines,
                            std::vector<Finding>& out) {
  const std::string r = rel(file, root);
  // Pass 1: collect every variable declared with an abstract interface
  // type anywhere in the file (members, parameters, locals). These are
  // the handles a call would dynamically dispatch through.
  static const std::regex iface_decl(
      R"((DataMemory|InstMemory|TraceSource|Prefetcher|PollutionFilter|CoreEngine)\s*[&*]\s*([A-Za-z_][A-Za-z0-9_]*))");
  std::vector<std::string> handles;
  bool any_hot = false;
  for (const std::string& line : lines) {
    if (line.find("ppf:hot") != std::string::npos) any_hot = true;
    std::smatch m;
    std::string rest = line;
    while (std::regex_search(rest, m, iface_decl)) {
      if (std::find(handles.begin(), handles.end(), m[2].str()) ==
          handles.end()) {
        handles.push_back(m[2].str());
      }
      rest = m.suffix();
    }
  }
  if (!any_hot) return;

  // Pass 2: inside hot regions, flag `virtual` and calls through the
  // collected handles (`h.` / `h->`).
  bool hot = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("ppf:hot") != std::string::npos) {
      hot = true;
      continue;
    }
    if (line.find("ppf:cold") != std::string::npos) {
      hot = false;
      continue;
    }
    if (!hot || comment_line(line)) continue;
    // Preprocessor lines cannot dispatch through anything; an #include
    // path like "workload/trace.hpp" would otherwise read as `trace.`.
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    if (contains_word(line, "virtual")) {
      out.push_back({"hot-loop-no-virtual", r, i + 1,
                     "`virtual` declared inside a ppf:hot region"});
    }
    for (const std::string& h : handles) {
      for (std::size_t pos = line.find(h); pos != std::string::npos;
           pos = line.find(h, pos + 1)) {
        if (pos > 0 && ident_char(line[pos - 1])) continue;
        const std::size_t end = pos + h.size();
        if (end < line.size() && ident_char(line[end])) continue;
        const bool call = line.compare(end, 1, ".") == 0 ||
                          line.compare(end, 2, "->") == 0;
        if (call) {
          out.push_back(
              {"hot-loop-no-virtual", r, i + 1,
               "call through abstract interface handle '" + h +
                   "' inside a ppf:hot region (devirtualize or mark the "
                   "slow path // ppf:cold)"});
          break;
        }
      }
    }
  }
}

// --- output ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Any other control byte would be invalid inside a JSON string —
      // a source line with a stray \f or \x01 must not break --json.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void print_findings(const std::vector<Finding>& findings, bool json) {
  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "" : ",") << "\n  {\"rule\": \""
                << json_escape(f.rule) << "\", \"file\": \""
                << json_escape(f.file) << "\", \"line\": " << f.line
                << ", \"message\": \"" << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]" : "\n]") << "\n";
    return;
  }
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  bool expect_violations = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--expect-violations") {
      expect_violations = true;
    } else if (arg == "--list-rules") {
      for (const Rule& r : kRules) {
        std::cout << r.name << ": " << r.help << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ppf_lint [--root DIR] [--json] "
                   "[--expect-violations] [--list-rules]\n";
      return 0;
    } else {
      std::cerr << "ppf_lint: unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (!fs::exists(root)) {
    std::cerr << "ppf_lint: no such directory: " << root.string() << "\n";
    return 2;
  }
  root = fs::canonical(root);

  const std::string checking_md = read_text(root / "docs" / "CHECKING.md");
  const std::string diff_md = read_text(root / "docs" / "DIFF.md");
  std::vector<Finding> findings;
  for (const fs::path& f : source_files(root / "src")) {
    const std::vector<std::string> lines = read_lines(f);
    check_bare_assert(f, root, lines, findings);
    check_wallclock_rand(f, root, lines, findings);
    check_obs_parity(f, root, lines, findings);
    check_event_bookkeeping(f, root, lines, findings);
    check_invariant_ids(f, root, lines, checking_md, findings);
    check_diff_oracle_ids(f, root, lines, diff_md, findings);
    check_hot_loop_virtual(f, root, lines, findings);
  }
  check_config_keys(root, findings);
  check_serve_docs(root, findings);
  check_span_docs(root, findings);

  print_findings(findings, json);
  if (expect_violations) {
    if (findings.empty()) {
      std::cerr << "ppf_lint: expected violations, found none\n";
      return 1;
    }
    return 0;
  }
  if (!findings.empty()) {
    std::cerr << "ppf_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
