// ppf_diff — differential/metamorphic bug-hunting driver.
//
// Samples random-but-valid configuration points from the knob lattice,
// evaluates the oracle catalogue against each (paired execution paths
// that must agree byte-for-byte, plus cross-config metamorphic
// relations), and shrinks every failure to a minimal key=value repro.
//
//   ppf_diff seed=42 trials=50            # the CI smoke invocation
//   ppf_diff seed=42 trials=50 jobs=8     # identical verdicts, faster
//   ppf_diff oracle=diff.cold_vs_snapshot trials=10
//   ppf_diff tripwire=1 trials=3          # prove catch -> shrink -> report
//   ppf_diff list=1                       # print the oracle catalogue
//
// Exit status: 0 all oracles held, 1 violations (or an internal error),
// 2 usage error. See docs/DIFF.md.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "diff/diff.hpp"

using namespace ppf;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [seed=N] [trials=N] [jobs=N] [oracle=ID[,ID...]] [shrink=0|1]\n"
      << "       [shrink_budget=N] [tripwire=0|1] [bench=a,b,...] "
         "[instructions=N] [warmup=N]\n"
      << "       [trial=N] [list=0|1]\n\n"
      << "  seed=N          master seed; trial i derives its own stream "
         "(default 42)\n"
      << "  trials=N        configuration points to sample (default 50)\n"
      << "  jobs=N          worker threads; verdicts are identical for any "
         "N (default 1)\n"
      << "  oracle=ID,...   run only the named oracles (default: all)\n"
      << "  shrink=0|1      shrink failing points to a minimal repro "
         "(default 1)\n"
      << "  shrink_budget=N max oracle probes per shrink (default 48)\n"
      << "  tripwire=0|1    plant the synthetic diff.tripwire bug to prove "
         "the pipeline (default 0)\n"
      << "  bench=a,b,...   restrict the benchmark axis\n"
      << "  instructions=N  fix the instruction budget axis to exactly N\n"
      << "  warmup=N        fix the warmup axis to exactly N\n"
      << "  trial=N         print the point trial N samples, then exit\n"
      << "  list=0|1        print the oracle catalogue, then exit\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

const std::vector<std::string>& driver_keys() {
  static const std::vector<std::string> keys = {
      "seed",     "trials",       "jobs",     "oracle", "shrink",
      "shrink_budget", "tripwire", "bench",   "instructions", "warmup",
      "trial",    "list",         "help"};
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  ParamMap params;
  try {
    params = ParamMap::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }
  if (params.has("help")) return usage(argv[0]);
  for (const auto& [key, value] : params.entries()) {
    bool known = false;
    for (const std::string& k : driver_keys()) known = known || k == key;
    if (!known) {
      std::cerr << "unknown key: " << key << "\n\n";
      return usage(argv[0]);
    }
  }

  if (params.get_bool("list", false)) {
    for (const diff::Oracle& o : diff::oracle_catalogue()) {
      std::cout << o.id << " — " << o.summary << "\n";
    }
    const diff::Oracle trip = diff::tripwire_oracle();
    std::cout << trip.id << " — " << trip.summary << " (tripwire=1 only)\n";
    return 0;
  }

  diff::DiffOptions opts;
  try {
    opts.seed = params.get_u64("seed", opts.seed);
    opts.trials = params.get_u64("trials", opts.trials);
    opts.jobs = params.get_u64("jobs", opts.jobs);
    opts.shrink = params.get_bool("shrink", opts.shrink);
    opts.shrink_budget = params.get_u64("shrink_budget", opts.shrink_budget);
    opts.tripwire = params.get_bool("tripwire", opts.tripwire);
    if (params.has("oracle")) {
      opts.only_oracles = split_csv(params.get_string("oracle", ""));
    }
    if (params.has("bench")) {
      opts.sample.benchmarks = split_csv(params.get_string("bench", ""));
      if (opts.sample.benchmarks.empty()) {
        std::cerr << "bench= needs at least one name\n\n";
        return usage(argv[0]);
      }
    }
    if (params.has("instructions")) {
      opts.sample.instruction_budgets = {params.get_u64("instructions", 0)};
    }
    if (params.has("warmup")) {
      opts.sample.warmups = {params.get_u64("warmup", 0)};
    }
    if (params.has("trial")) {
      const std::uint64_t t = params.get_u64("trial", 0);
      std::cout << diff::trial_point(opts, t).repro() << "\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return usage(argv[0]);
  }

  try {
    const diff::DiffReport rep = diff::run_diff(opts);
    std::cout << rep.format();
    return rep.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "ppf_diff failed: " << e.what() << "\n";
    return 1;
  }
}
